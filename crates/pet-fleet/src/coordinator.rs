//! The fleet coordinator: §4.6.3's back-end controller over real sockets.
//!
//! Each round, the coordinator draws the estimating path (and, in active
//! mode, the per-round seed) from its session RNG, broadcasts a
//! `reader-round` request to every live agent concurrently, and OR-merges
//! the replies: a slot counts as busy when *any* answering reader heard
//! energy in it. Agents return the raw responder count for every prefix
//! length of the path, so the adaptive binary search — re-probes and all —
//! runs coordinator-side over cached counts. That is what makes the merge
//! **bit-for-bit equivalent** to the in-process
//! [`pet_sim::multireader`] controller on the same seeds: both draw the
//! same paths, apply the same per-reader [`ChannelModel`] from the same
//! noise stream, and see the same responder counts for every query.
//!
//! Failure semantics mirror [`Deployment::try_estimate_with_outages`]:
//! a reader that misses a round (deadline, crash, garbage) contributes no
//! report *and draws no channel noise*; a round with at least
//! [`FleetConfig::quorum`] answers merges the partial set and records the
//! degraded coverage; a round with fewer fails the session with the same
//! [`QuorumLost`] value the simulator produces.

use crate::error::FleetError;
use crate::fault::{FaultEvent, ProxyControl};
use crate::link::{ReaderLink, RetryPolicy, RoundReport};
use crate::metrics::FleetMetrics;
use pet_core::config::{PetConfig, TagMode};
use pet_core::front::Estimator;
use pet_core::oracle::{ResponderOracle, RoundStart};
use pet_obs::Summary;
use pet_phy::channel::{Channel, ChannelModel, PerfectChannel};
use pet_phy::Air;
use pet_server::proto::{MAX_COVERAGE_ZONES, MAX_TAGS, MAX_ZONES};
use pet_sim::multireader::{coverage_fraction, Deployment, QuorumLost};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The deterministic deployment every party reconstructs from four
/// wire-size scalars (see [`pet_sim::multireader::shard_keys`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// True tag population (sequential keys).
    pub tags: usize,
    /// Number of zones the tags scatter over.
    pub zones: u32,
    /// Seed of the scatter.
    pub deploy_seed: u64,
    /// Zone coverage of each reader; one entry per agent.
    pub coverages: Vec<Vec<u32>>,
}

impl FleetSpec {
    /// Number of readers the spec describes.
    #[must_use]
    pub fn reader_count(&self) -> usize {
        self.coverages.len()
    }

    /// The coordinator's local reference deployment (coverage accounting
    /// and the in-process equivalence baseline).
    #[must_use]
    pub fn deployment(&self) -> Deployment {
        Deployment::synthetic(
            self.tags,
            self.zones,
            self.deploy_seed,
            self.coverages.clone(),
        )
    }
}

/// Everything about *how* to run the session (the [`FleetSpec`] says
/// *what* to estimate).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The PET protocol configuration (height, accuracy, tag mode,
    /// mitigation). Its channel must stay `Perfect` — per-reader loss is
    /// [`Self::channel`], applied coordinator-side after the OR-merge
    /// collects raw counts.
    pub pet: PetConfig,
    /// Estimating rounds to run.
    pub rounds: u32,
    /// Seed of the session RNG drawing paths and per-round hash seeds.
    pub session_seed: u64,
    /// Minimum answering readers per round; fewer fails the session.
    pub quorum: usize,
    /// Straggler deadline per reader per round.
    pub round_deadline: Duration,
    /// Transient-failure retry discipline.
    pub retry: RetryPolicy,
    /// Per-reader channel model applied to reported counts.
    pub channel: ChannelModel,
    /// Scheduled fault injections (need a [`ProxyControl`] attached for
    /// the targeted reader).
    pub faults: Vec<FaultEvent>,
}

impl FleetConfig {
    /// A config with service defaults: quorum 1, two-second deadlines,
    /// default retries, perfect per-reader channels, no faults.
    #[must_use]
    pub fn new(pet: PetConfig, rounds: u32, session_seed: u64) -> Self {
        Self {
            pet,
            rounds,
            session_seed,
            quorum: 1,
            round_deadline: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            channel: ChannelModel::Perfect,
            faults: Vec::new(),
        }
    }
}

/// The merged outcome of a fleet estimation.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The controller's cardinality estimate.
    pub estimate: f64,
    /// Mean gray-node prefix length across rounds.
    pub mean_prefix_len: f64,
    /// Rounds executed.
    pub rounds: u32,
    /// Protocol slots elapsed at the controller.
    pub controller_slots: u64,
    /// Tags visible to at least one reader of the full fleet.
    pub covered_tags: u64,
    /// Mean per-round coverage ratio (1.0 when every reader answered
    /// every round).
    pub effective_coverage: f64,
    /// Rounds every reader answered.
    pub full_rounds: u32,
    /// Rounds merged from a partial (but ≥ quorum) reader set.
    pub partial_rounds: u32,
    /// Whether any round ran degraded or any reader missed/died —
    /// the explicit "this estimate covers less than you deployed" flag.
    pub degraded: bool,
    /// Per-reader outcome counters, in reader order.
    pub readers: Vec<crate::link::ReaderStats>,
    /// Snapshot of the coordinator's RED metrics.
    pub telemetry: Summary,
    /// PHY pricing of the controller's merged transcript, when the PET
    /// config carries a [`pet_phy::PhyProfile`].
    pub phy: Option<pet_phy::PhyReport>,
}

impl FleetReport {
    /// A deterministic digest of the estimation outcome (FNV-1a over the
    /// bit-exact statistic), for cheap cross-run equality checks in smoke
    /// tests.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let canon = format!(
            "{:016x}:{:016x}:{}:{}:{}:{}",
            self.estimate.to_bits(),
            self.mean_prefix_len.to_bits(),
            self.rounds,
            self.controller_slots,
            self.full_rounds,
            self.partial_rounds,
        );
        fnv1a(canon.as_bytes())
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The coordinator: owns the links, runs the session, produces the
/// [`FleetReport`].
#[derive(Debug)]
pub struct Coordinator {
    spec: FleetSpec,
    config: FleetConfig,
    links: Vec<ReaderLink>,
    controls: Vec<Option<ProxyControl>>,
    metrics: FleetMetrics,
}

impl Coordinator {
    /// Builds a coordinator over `agents` (one address per reader, in
    /// [`FleetSpec::coverages`] order). Connections are opened lazily on
    /// the first round.
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] when the spec/config combination is invalid.
    pub fn new(
        spec: FleetSpec,
        config: FleetConfig,
        agents: &[String],
    ) -> Result<Self, FleetError> {
        validate(&spec, &config, agents)?;
        let links = agents
            .iter()
            .enumerate()
            .map(|(i, addr)| ReaderLink::new(addr.clone(), i))
            .collect();
        let controls = vec![None; spec.reader_count()];
        Ok(Self {
            spec,
            config,
            links,
            controls,
            metrics: FleetMetrics::default(),
        })
    }

    /// Attaches the fault-proxy control for reader `reader`, enabling
    /// scheduled [`FaultEvent`]s against it.
    ///
    /// # Panics
    ///
    /// Panics if `reader` is out of range.
    pub fn set_control(&mut self, reader: usize, control: ProxyControl) {
        self.controls[reader] = Some(control);
    }

    /// The coordinator's metric store.
    #[must_use]
    pub fn metrics(&self) -> &FleetMetrics {
        &self.metrics
    }

    /// Sends a `shutdown` to every agent, ignoring per-agent failures
    /// (dead agents are the point of some drills).
    pub fn shutdown_agents(&self) {
        for link in &self.links {
            if let Ok(mut client) = pet_server::Client::connect(link.addr()) {
                let _ = client.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = client.roundtrip(r#"{"id":"fleet-bye","verb":"shutdown"}"#);
            }
        }
    }

    /// Runs the whole estimation session across the fleet.
    ///
    /// # Errors
    ///
    /// [`FleetError::QuorumLost`] when a round gathers fewer than
    /// [`FleetConfig::quorum`] answers; [`FleetError::Config`] when a
    /// scheduled fault targets a reader without an attached control.
    pub fn run(&mut self) -> Result<FleetReport, FleetError> {
        for f in &self.config.faults {
            if self.controls[f.reader].is_none() {
                return Err(FleetError::Config(format!(
                    "fault at round {} targets reader {} which has no proxy control attached",
                    f.round, f.reader
                )));
            }
        }
        let deployment = self.spec.deployment();
        let estimator = Estimator::new(self.config.pet);
        let mut rng = StdRng::seed_from_u64(self.config.session_seed);
        // The controller-side Air must not re-apply loss: the per-reader
        // channel already did (same discipline as the simulator).
        let mut air = Air::new(PerfectChannel);
        let mut oracle = FleetOracle::new(
            &self.spec,
            &self.config,
            &deployment,
            &mut self.links,
            &self.controls,
            &self.metrics,
        );
        let report = estimator
            .try_run_oracle(self.config.rounds, &mut oracle, &mut air, &mut rng)
            .map_err(|e| FleetError::Config(e.to_string()))?;
        if let Some(lost) = oracle.failure {
            return Err(FleetError::QuorumLost(lost));
        }
        let executed = oracle.full_rounds + oracle.partial_rounds;
        let effective_coverage = if executed == 0 {
            1.0
        } else {
            oracle.coverage_sum / f64::from(executed)
        };
        let full_rounds = oracle.full_rounds;
        let partial_rounds = oracle.partial_rounds;
        drop(oracle);
        let readers: Vec<_> = self.links.iter().map(|l| l.stats).collect();
        let degraded = partial_rounds > 0 || readers.iter().any(|s| s.dead || s.missed_rounds > 0);
        Ok(FleetReport {
            estimate: report.estimate,
            mean_prefix_len: report.mean_prefix_len,
            rounds: report.rounds,
            controller_slots: report.metrics.slots,
            covered_tags: deployment.covered_keys().len() as u64,
            effective_coverage,
            full_rounds,
            partial_rounds,
            degraded,
            readers,
            telemetry: self.metrics.snapshot(),
            phy: report.phy,
        })
    }
}

/// One-call convenience: build a coordinator and run it.
///
/// # Errors
///
/// Propagates [`Coordinator::new`] / [`Coordinator::run`] failures.
pub fn run_fleet(
    spec: &FleetSpec,
    config: &FleetConfig,
    agents: &[String],
) -> Result<FleetReport, FleetError> {
    Coordinator::new(spec.clone(), config.clone(), agents)?.run()
}

fn validate(spec: &FleetSpec, config: &FleetConfig, agents: &[String]) -> Result<(), FleetError> {
    let cfg = |msg: String| Err(FleetError::Config(msg));
    if spec.coverages.is_empty() {
        return cfg("fleet needs at least one reader".into());
    }
    if agents.len() != spec.reader_count() {
        return cfg(format!(
            "{} agent addresses for {} readers",
            agents.len(),
            spec.reader_count()
        ));
    }
    if spec.tags == 0 || spec.tags > MAX_TAGS {
        return cfg(format!("tags must be 1..={MAX_TAGS}"));
    }
    if spec.zones == 0 || spec.zones > MAX_ZONES {
        return cfg(format!("zones must be 1..={MAX_ZONES}"));
    }
    for (i, cov) in spec.coverages.iter().enumerate() {
        if cov.is_empty() || cov.len() > MAX_COVERAGE_ZONES {
            return cfg(format!(
                "reader {i} coverage must list 1..={MAX_COVERAGE_ZONES} zones"
            ));
        }
        if let Some(&z) = cov.iter().find(|&&z| z >= spec.zones) {
            return cfg(format!(
                "reader {i} covers nonexistent zone {z} (zones = {})",
                spec.zones
            ));
        }
    }
    if config.rounds == 0 {
        return cfg("rounds must be positive".into());
    }
    if config.quorum == 0 || config.quorum > spec.reader_count() {
        return cfg(format!(
            "quorum must be 1..={} (got {})",
            spec.reader_count(),
            config.quorum
        ));
    }
    if config.round_deadline.is_zero() {
        return cfg("round deadline must be positive".into());
    }
    if config.pet.zero_probe() {
        return cfg(
            "zero-probe configs need a pre-round presence probe the reader-round \
             protocol does not carry"
                .into(),
        );
    }
    if config.pet.channel() != ChannelModel::Perfect {
        return cfg(
            "set per-reader loss via FleetConfig::channel; the PET config's own \
             channel must stay Perfect"
                .into(),
        );
    }
    for f in &config.faults {
        if f.reader >= spec.reader_count() {
            return cfg(format!(
                "fault at round {} targets reader {} of a {}-reader fleet",
                f.round,
                f.reader,
                spec.reader_count()
            ));
        }
    }
    Ok(())
}

/// The networked twin of `pet_sim::multireader`'s controller oracle.
///
/// `begin_round` broadcasts the round to every live agent concurrently and
/// caches their raw per-prefix-length counts; `responders` OR-merges the
/// cached counts through each answering reader's channel, drawing noise in
/// reader order from the same dedicated stream the simulator uses — which
/// is exactly what keeps the two bit-for-bit comparable.
struct FleetOracle<'a> {
    deployment: &'a Deployment,
    links: &'a mut [ReaderLink],
    controls: &'a [Option<ProxyControl>],
    metrics: &'a FleetMetrics,
    faults: Vec<FaultEvent>,
    height: u32,
    tag_mode: TagMode,
    deadline: Duration,
    retry: RetryPolicy,
    quorum: usize,
    channels: Vec<ChannelModel>,
    /// Per-reader static request fragment (everything but id/path/seed).
    request_prefixes: Vec<String>,
    round: u32,
    answered: Vec<Option<RoundReport>>,
    /// Channel-noise stream; seed shared with the simulator's controller.
    noise_rng: StdRng,
    covered_all: u64,
    coverage_cache: HashMap<Vec<bool>, f64>,
    coverage_sum: f64,
    full_rounds: u32,
    partial_rounds: u32,
    failure: Option<QuorumLost>,
}

impl<'a> FleetOracle<'a> {
    fn new(
        spec: &'a FleetSpec,
        config: &'a FleetConfig,
        deployment: &'a Deployment,
        links: &'a mut [ReaderLink],
        controls: &'a [Option<ProxyControl>],
        metrics: &'a FleetMetrics,
    ) -> Self {
        let n = spec.reader_count();
        let deadline_ms = config.round_deadline.as_millis().max(1);
        let request_prefixes = spec
            .coverages
            .iter()
            .map(|cov| {
                let zones: Vec<String> = cov.iter().map(u32::to_string).collect();
                let mut prefix = format!(
                    "\"verb\":\"reader-round\",\"tags\":{},\"zones\":{},\
                     \"deploy_seed\":\"{:x}\",\"coverage\":[{}],\"height\":{},\
                     \"deadline_ms\":{deadline_ms}",
                    spec.tags,
                    spec.zones,
                    spec.deploy_seed,
                    zones.join(","),
                    config.pet.height(),
                );
                if config.pet.tag_mode() == TagMode::PassivePreloaded {
                    prefix.push_str(&format!(
                        ",\"manufacture_seed\":\"{:x}\"",
                        config.pet.manufacture_seed()
                    ));
                }
                prefix
            })
            .collect();
        Self {
            deployment,
            links,
            controls,
            metrics,
            faults: config.faults.clone(),
            height: config.pet.height(),
            tag_mode: config.pet.tag_mode(),
            deadline: config.round_deadline,
            retry: config.retry,
            quorum: config.quorum,
            channels: vec![config.channel; n],
            request_prefixes,
            round: 0,
            answered: vec![None; n],
            noise_rng: StdRng::seed_from_u64(0x5EED_C0DE),
            covered_all: deployment.covered_keys().len() as u64,
            coverage_cache: HashMap::new(),
            coverage_sum: 0.0,
            full_rounds: 0,
            partial_rounds: 0,
            failure: None,
        }
    }

    fn request_line(&self, reader: usize, round: u32, start: &RoundStart) -> String {
        let mut line = format!(
            "{{\"id\":\"r{round}-a{reader}\",{},\"path\":\"{:x}\"",
            self.request_prefixes[reader],
            start.path.bits()
        );
        if let Some(seed) = start.seed {
            line.push_str(&format!(",\"round_seed\":\"{seed:x}\""));
        }
        line.push('}');
        line
    }

    /// Broadcasts one round to every link concurrently and collects the
    /// per-reader reports (straggler deadlines apply per reader, in
    /// parallel — one stalled agent costs one deadline, not N).
    fn broadcast(&mut self, round: u32, start: &RoundStart) -> Vec<Option<RoundReport>> {
        let lines: Vec<String> = (0..self.links.len())
            .map(|i| self.request_line(i, round, start))
            .collect();
        let height = self.height;
        let deadline = self.deadline;
        let retry = self.retry;
        let metrics: &FleetMetrics = self.metrics;
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .links
                .iter_mut()
                .zip(lines)
                .map(|(link, line)| {
                    s.spawn(move || link.round_trip(&line, height, deadline, &retry, metrics))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("reader broadcast thread panicked"))
                .collect()
        })
    }

    fn round_coverage(&mut self, alive: &[bool]) -> f64 {
        if let Some(&f) = self.coverage_cache.get(alive) {
            return f;
        }
        let answering: Vec<usize> = (0..alive.len()).filter(|&i| alive[i]).collect();
        let covered = self.deployment.covered_keys_of(&answering).len() as u64;
        let f = coverage_fraction(covered, self.covered_all);
        self.coverage_cache.insert(alive.to_vec(), f);
        f
    }
}

impl ResponderOracle for FleetOracle<'_> {
    fn begin_round(&mut self, start: &RoundStart) {
        let round = self.round;
        self.round += 1;
        if self.failure.is_some() {
            return;
        }
        debug_assert!(
            self.tag_mode != TagMode::ActivePerRound || start.seed.is_some(),
            "active mode rounds must carry a seed"
        );
        for f in &self.faults {
            if f.round == round {
                if let Some(ctrl) = &self.controls[f.reader] {
                    ctrl.set(f.action.mode());
                }
            }
        }
        let round_started = Instant::now();
        let reports = self.broadcast(round, start);
        self.metrics.round_latency(round_started.elapsed());
        let answered = reports.iter().filter(|r| r.is_some()).count();
        if answered < self.quorum {
            self.failure = Some(QuorumLost {
                round,
                answered,
                quorum: self.quorum,
            });
            self.answered = vec![None; self.links.len()];
            return;
        }
        if answered == self.links.len() {
            self.full_rounds += 1;
            self.metrics.round_full();
        } else {
            self.partial_rounds += 1;
            self.metrics.round_partial();
        }
        let alive: Vec<bool> = reports.iter().map(Option::is_some).collect();
        self.coverage_sum += self.round_coverage(&alive);
        self.answered = reports;
    }

    fn responders(&mut self, prefix_len: u32) -> u64 {
        if self.failure.is_some() {
            return 0;
        }
        let mut busy_readers = 0u64;
        for (report, channel) in self.answered.iter().zip(&mut self.channels) {
            let Some(report) = report else { continue };
            let count = if prefix_len == 0 {
                report.population
            } else {
                report.counts[(prefix_len - 1) as usize]
            };
            let heard = channel.transmit(count, &mut self.noise_rng);
            if heard.is_busy() {
                busy_readers += 1;
            }
        }
        busy_readers
    }

    fn population(&self) -> u64 {
        // Not duplicate-free; mirrors the simulator's presence-probe
        // accounting (any positive count is equivalent there).
        self.answered.iter().flatten().map(|r| r.population).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pet_core::config::Mitigation;
    use pet_phy::channel::LossyChannel;
    use pet_stats::accuracy::Accuracy;

    fn pet_config() -> PetConfig {
        PetConfig::builder()
            .accuracy(Accuracy::new(0.2, 0.2).unwrap())
            .build()
            .unwrap()
    }

    fn spec() -> FleetSpec {
        FleetSpec {
            tags: 1_000,
            zones: 2,
            deploy_seed: 1,
            coverages: vec![vec![0], vec![1]],
        }
    }

    fn addrs(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 40_000 + i))
            .collect()
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let cases: Vec<(FleetSpec, FleetConfig, Vec<String>, &str)> = vec![
            (
                FleetSpec {
                    coverages: vec![],
                    ..spec()
                },
                FleetConfig::new(pet_config(), 8, 1),
                addrs(0),
                "at least one reader",
            ),
            (
                spec(),
                FleetConfig::new(pet_config(), 8, 1),
                addrs(3),
                "agent addresses",
            ),
            (
                FleetSpec { tags: 0, ..spec() },
                FleetConfig::new(pet_config(), 8, 1),
                addrs(2),
                "tags",
            ),
            (
                FleetSpec {
                    coverages: vec![vec![0], vec![7]],
                    ..spec()
                },
                FleetConfig::new(pet_config(), 8, 1),
                addrs(2),
                "nonexistent zone 7",
            ),
            (
                spec(),
                FleetConfig {
                    quorum: 3,
                    ..FleetConfig::new(pet_config(), 8, 1)
                },
                addrs(2),
                "quorum",
            ),
            (
                spec(),
                FleetConfig {
                    rounds: 0,
                    ..FleetConfig::new(pet_config(), 8, 1)
                },
                addrs(2),
                "rounds",
            ),
            (
                spec(),
                FleetConfig::new(
                    PetConfig::builder()
                        .accuracy(Accuracy::new(0.2, 0.2).unwrap())
                        .zero_probe(true)
                        .build()
                        .unwrap(),
                    8,
                    1,
                ),
                addrs(2),
                "zero-probe",
            ),
            (
                spec(),
                FleetConfig::new(
                    PetConfig::builder()
                        .accuracy(Accuracy::new(0.2, 0.2).unwrap())
                        .channel(ChannelModel::Lossy(LossyChannel::new(0.1, 0.0).unwrap()))
                        .mitigation(Mitigation::ReProbe { probes: 2 })
                        .build()
                        .unwrap(),
                    8,
                    1,
                ),
                addrs(2),
                "must stay Perfect",
            ),
            (
                spec(),
                FleetConfig {
                    faults: vec![FaultEvent {
                        round: 0,
                        reader: 5,
                        action: crate::fault::FaultAction::Kill,
                    }],
                    ..FleetConfig::new(pet_config(), 8, 1)
                },
                addrs(2),
                "targets reader 5",
            ),
        ];
        for (spec, config, agents, needle) in cases {
            let err = Coordinator::new(spec, config, &agents)
                .err()
                .unwrap_or_else(|| panic!("expected config error containing {needle:?}"));
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn fault_without_control_is_rejected_at_run() {
        let config = FleetConfig {
            faults: vec![FaultEvent {
                round: 0,
                reader: 1,
                action: crate::fault::FaultAction::Kill,
            }],
            ..FleetConfig::new(pet_config(), 8, 1)
        };
        let mut coord = Coordinator::new(spec(), config, &addrs(2)).unwrap();
        let err = coord.run().unwrap_err();
        assert!(err.to_string().contains("no proxy control"));
    }

    #[test]
    fn request_lines_carry_hex_scalars() {
        let spec = FleetSpec {
            tags: 500,
            zones: 4,
            deploy_seed: 0xDEAD_BEEF,
            coverages: vec![vec![0, 2]],
        };
        let config = FleetConfig::new(pet_config(), 4, 9);
        let deployment = spec.deployment();
        let mut links = vec![ReaderLink::new("127.0.0.1:1", 0)];
        let controls = vec![None];
        let metrics = FleetMetrics::default();
        let oracle = FleetOracle::new(&spec, &config, &deployment, &mut links, &controls, &metrics);
        let start = RoundStart {
            path: pet_core::bits::BitString::from_bits(0x9f3c, 32).unwrap(),
            seed: None,
        };
        let line = oracle.request_line(0, 3, &start);
        assert!(line.contains("\"id\":\"r3-a0\""));
        assert!(line.contains("\"deploy_seed\":\"deadbeef\""));
        assert!(line.contains("\"coverage\":[0,2]"));
        assert!(line.contains("\"path\":\"9f3c\""));
        assert!(line.contains("\"manufacture_seed\""));
        assert!(!line.contains("round_seed"));
        // The line must be a valid request in the server's own parser.
        let parsed = pet_server::parse_request(&line).expect("agent-parseable");
        assert_eq!(parsed.id, "r3-a0");
        // Digest is stable for a fixed report shape.
        let report = FleetReport {
            estimate: 123.5,
            mean_prefix_len: 4.25,
            rounds: 8,
            controller_slots: 40,
            covered_tags: 100,
            effective_coverage: 1.0,
            full_rounds: 8,
            partial_rounds: 0,
            degraded: false,
            readers: vec![],
            telemetry: Summary::default(),
            phy: None,
        };
        assert_eq!(report.digest(), report.digest());
    }
}
