//! RED metrics for the fleet coordinator.
//!
//! Mirrors the serving layer's pattern (`pet_server::ServerMetrics`): the
//! coordinator keeps its own [`pet_obs::Summary`] behind a mutex so the
//! final [`crate::FleetReport`] can embed a snapshot, and every recording
//! also forwards through the `pet_obs` free functions so a process-global
//! sink (when installed) streams the same events.
//!
//! Metric names:
//!
//! - `fleet.req` — reader-round requests sent (rate)
//! - `fleet.reader.<i>.ok` / `.miss` / `.retry` — per-reader outcomes
//! - `fleet.rounds.full` / `fleet.rounds.partial` — merge quality
//! - span `fleet.round` — wall-clock latency of each merged round

use pet_obs::{Event, Summary};
use std::sync::Mutex;
use std::time::Duration;

/// The coordinator's metric store. All methods are `&self`.
#[derive(Debug, Default)]
pub struct FleetMetrics {
    summary: Mutex<Summary>,
}

impl FleetMetrics {
    fn accumulate(&self, event: &Event) {
        self.summary
            .lock()
            .expect("fleet metrics poisoned")
            .accumulate(event);
        pet_obs::record(event);
    }

    fn bump(&self, name: String) {
        self.accumulate(&Event::Counter {
            name: name.into(),
            delta: 1,
        });
    }

    /// Records one reader-round request sent to an agent.
    pub fn request(&self) {
        self.bump("fleet.req".to_string());
    }

    /// Records a reader answering its round in time.
    pub fn reader_ok(&self, reader: usize) {
        self.bump(format!("fleet.reader.{reader}.ok"));
    }

    /// Records a reader missing its round (timeout, death, bad reply).
    pub fn reader_miss(&self, reader: usize) {
        self.bump(format!("fleet.reader.{reader}.miss"));
    }

    /// Records a transient-failure retry toward a reader.
    pub fn reader_retry(&self, reader: usize) {
        self.bump(format!("fleet.reader.{reader}.retry"));
    }

    /// Records a round where every reader answered.
    pub fn round_full(&self) {
        self.bump("fleet.rounds.full".to_string());
    }

    /// Records a round merged from a partial (but ≥ quorum) reader set.
    pub fn round_partial(&self) {
        self.bump("fleet.rounds.partial".to_string());
    }

    /// Records the wall-clock latency of one merged round.
    pub fn round_latency(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.accumulate(&Event::Span {
            name: "fleet.round".into(),
            nanos,
        });
    }

    /// A point-in-time snapshot of every counter and histogram.
    #[must_use]
    pub fn snapshot(&self) -> Summary {
        self.summary.lock().expect("fleet metrics poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_reader() {
        let m = FleetMetrics::default();
        m.request();
        m.request();
        m.reader_ok(0);
        m.reader_miss(1);
        m.reader_retry(1);
        m.round_full();
        m.round_partial();
        m.round_latency(Duration::from_micros(80));
        let s = m.snapshot();
        assert_eq!(s.counter("fleet.req"), 2);
        assert_eq!(s.counter("fleet.reader.0.ok"), 1);
        assert_eq!(s.counter("fleet.reader.1.miss"), 1);
        assert_eq!(s.counter("fleet.reader.1.retry"), 1);
        assert_eq!(s.counter("fleet.rounds.full"), 1);
        assert_eq!(s.counter("fleet.rounds.partial"), 1);
        assert_eq!(s.span_stats("fleet.round").unwrap().count, 1);
    }
}
