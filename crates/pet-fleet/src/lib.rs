//! # pet-fleet — distributed multi-reader estimation
//!
//! The paper's §4.6.3 controller is an in-process abstraction in
//! `pet_sim::multireader`: every "reader" is a struct, every "report" a
//! function return. This crate is the same controller over real sockets —
//! a **coordinator** drives N `pet-server` agents through the line
//! protocol's `reader-round` verb and OR-merges their per-round reports,
//! with the failure modes a network actually has:
//!
//! - **Hash-synchronized rounds** ([`coordinator`]): the coordinator draws
//!   each round's estimating path (and per-round seed, in active mode) and
//!   broadcasts it; agents answer with raw responder counts for every
//!   prefix length against their deterministically derived zone shard. The
//!   adaptive binary search then runs coordinator-side over cached counts,
//!   which keeps the merge **bit-for-bit equivalent** to the simulator on
//!   identical seeds — the property the integration suite pins, for
//!   perfect *and* lossy per-reader channels.
//! - **Quorum merges**: a round missing some readers still merges when at
//!   least [`FleetConfig::quorum`] answered; the lost coverage is measured
//!   and reported ([`FleetReport::effective_coverage`]), not hidden. Fewer
//!   than quorum fails the session with the same
//!   [`QuorumLost`](pet_sim::multireader::QuorumLost) value the simulator
//!   produces.
//! - **Straggler deadlines and retries** ([`link`]): per-reader round
//!   deadlines applied concurrently (one stalled agent costs one deadline,
//!   not N), exponential-backoff retries for transient faults, and
//!   administrative death after repeated misses.
//! - **Fault injection** ([`fault`]): a wire-level proxy that kills,
//!   stalls, or silences one reader on a per-round schedule, so
//!   degradation drills are reproducible.
//! - **Observability** ([`metrics`]): RED metrics plus per-reader
//!   ok/miss/retry counters, snapshotted into every [`FleetReport`].
//!
//! ```no_run
//! use pet_core::PetConfig;
//! use pet_fleet::{run_fleet, FleetConfig, FleetSpec};
//!
//! let spec = FleetSpec {
//!     tags: 10_000,
//!     zones: 4,
//!     deploy_seed: 7,
//!     coverages: vec![vec![0, 1], vec![1, 2], vec![2, 3]],
//! };
//! let mut config = FleetConfig::new(PetConfig::paper_default(), 128, 42);
//! config.quorum = 2;
//! let agents = vec![
//!     "10.0.0.1:7070".to_string(),
//!     "10.0.0.2:7070".to_string(),
//!     "10.0.0.3:7070".to_string(),
//! ];
//! let report = run_fleet(&spec, &config, &agents).expect("fleet estimation");
//! println!("n̂ = {:.0} (coverage {:.2})", report.estimate, report.effective_coverage);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod error;
pub mod fault;
pub mod link;
pub mod metrics;

pub use coordinator::{run_fleet, Coordinator, FleetConfig, FleetReport, FleetSpec};
pub use error::FleetError;
pub use fault::{FaultAction, FaultEvent, FaultProxy, ProxyControl, ProxyMode};
pub use link::{ReaderLink, ReaderStats, RetryPolicy, RoundReport};
pub use metrics::FleetMetrics;
