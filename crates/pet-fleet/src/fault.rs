//! Fault injection for fleet tests and drills.
//!
//! A [`FaultProxy`] sits between the coordinator and one agent, forwarding
//! the line protocol byte-for-byte until its [`ProxyControl`] says
//! otherwise. Faults are applied at the *wire* level — the agent process
//! stays healthy, the coordinator simply observes the failure mode a real
//! deployment would see:
//!
//! - [`ProxyMode::Dead`]: connections close and new ones are refused — an
//!   agent crash. The coordinator sees EOF, burns its retries, and marks
//!   the reader dead.
//! - [`ProxyMode::Stall`]: replies are withheld past the configured delay —
//!   a straggler. The coordinator's round deadline converts this into a
//!   miss instead of blocking the merge.
//! - [`ProxyMode::DropReplies`]: requests are delivered, replies vanish — a
//!   one-way partition. Indistinguishable from a stall at the coordinator.
//!
//! The coordinator applies scheduled [`FaultEvent`]s to attached controls
//! at the start of each round, which is what makes kill-at-round-`k` drills
//! reproducible enough to compare against the in-process simulator.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What the proxy does with traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyMode {
    /// Forward both directions untouched.
    Forward,
    /// Delay each reply by this much before forwarding it.
    Stall(Duration),
    /// Deliver requests, silently discard replies.
    DropReplies,
    /// Close every connection and refuse new ones.
    Dead,
}

/// Shared handle that changes a running proxy's [`ProxyMode`].
#[derive(Debug, Clone)]
pub struct ProxyControl {
    mode: Arc<Mutex<ProxyMode>>,
}

impl ProxyControl {
    fn new() -> Self {
        Self {
            mode: Arc::new(Mutex::new(ProxyMode::Forward)),
        }
    }

    /// Switches the proxy's behavior (takes effect per forwarded line).
    pub fn set(&self, mode: ProxyMode) {
        *self.mode.lock().expect("proxy control poisoned") = mode;
    }

    /// The current mode.
    #[must_use]
    pub fn mode(&self) -> ProxyMode {
        *self.mode.lock().expect("proxy control poisoned")
    }
}

/// What a scheduled fault does to its reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill the reader (proxy goes [`ProxyMode::Dead`]).
    Kill,
    /// Stall the reader's replies by this much.
    Stall(Duration),
    /// Drop the reader's replies.
    DropReplies,
    /// Restore normal forwarding.
    Restore,
}

impl FaultAction {
    /// The proxy mode this action switches to.
    #[must_use]
    pub fn mode(self) -> ProxyMode {
        match self {
            Self::Kill => ProxyMode::Dead,
            Self::Stall(d) => ProxyMode::Stall(d),
            Self::DropReplies => ProxyMode::DropReplies,
            Self::Restore => ProxyMode::Forward,
        }
    }
}

/// One scheduled fault: at the start of round `round` (0-based), apply
/// `action` to reader `reader`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Round (0-based) the fault takes effect.
    pub round: u32,
    /// Index of the reader it targets.
    pub reader: usize,
    /// What happens.
    pub action: FaultAction,
}

/// A running line-protocol fault proxy in front of one agent.
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    control: ProxyControl,
}

impl FaultProxy {
    /// Spawns a proxy on an ephemeral localhost port forwarding to
    /// `upstream`. The accept loop runs on a detached thread for the life
    /// of the process (proxies are test/drill infrastructure, not a
    /// service).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the listener cannot bind.
    pub fn spawn(upstream: SocketAddr) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let control = ProxyControl::new();
        let accept_control = control.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(client) = stream else { continue };
                if accept_control.mode() == ProxyMode::Dead {
                    // Refused: the dropped stream reads as instant EOF.
                    continue;
                }
                let control = accept_control.clone();
                std::thread::spawn(move || forward_connection(&client, upstream, &control));
            }
        });
        Ok(Self { addr, control })
    }

    /// The address the coordinator should dial instead of the agent.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The control handle for scheduled faults.
    #[must_use]
    pub fn control(&self) -> ProxyControl {
        self.control.clone()
    }
}

/// Pumps one client connection through the proxy until either side closes
/// or the mode turns [`ProxyMode::Dead`].
fn forward_connection(client: &TcpStream, upstream: SocketAddr, control: &ProxyControl) {
    let Ok(agent) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(std::net::Shutdown::Both);
        return;
    };
    let (Ok(client_rx), Ok(agent_rx)) = (client.try_clone(), agent.try_clone()) else {
        return;
    };
    let (Ok(client_tx), Ok(agent_tx)) = (client.try_clone(), agent.try_clone()) else {
        return;
    };

    // Agent → coordinator: the direction faults mangle.
    let reply_control = control.clone();
    let replies = std::thread::spawn(move || {
        let mut lines = BufReader::new(agent_rx);
        let mut tx = client_tx;
        let mut line = String::new();
        loop {
            line.clear();
            match lines.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            match reply_control.mode() {
                ProxyMode::Dead => break,
                ProxyMode::DropReplies => continue,
                ProxyMode::Stall(d) => {
                    std::thread::sleep(d);
                    if reply_control.mode() == ProxyMode::Dead {
                        break;
                    }
                }
                ProxyMode::Forward => {}
            }
            if tx.write_all(line.as_bytes()).is_err() {
                break;
            }
        }
        let _ = tx.shutdown(std::net::Shutdown::Both);
    });

    // Coordinator → agent: requests pass through, but a Dead mode seen on
    // the next request closes the pair (crash semantics).
    {
        let mut lines = BufReader::new(client_rx);
        let mut tx = agent_tx;
        let mut line = String::new();
        loop {
            line.clear();
            match lines.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            if control.mode() == ProxyMode::Dead {
                break;
            }
            if tx.write_all(line.as_bytes()).is_err() {
                break;
            }
        }
        let _ = tx.shutdown(std::net::Shutdown::Both);
        let _ = client.shutdown(std::net::Shutdown::Both);
    }
    let _ = replies.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// A single-connection upstream echoing each line prefixed with "echo:".
    fn spawn_echo_upstream() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut tx = stream;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                        let reply = format!("echo:{line}");
                        if tx.write_all(reply.as_bytes()).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    fn roundtrip(addr: SocketAddr, line: &str, timeout: Duration) -> std::io::Result<String> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        let mut tx = stream.try_clone()?;
        tx.write_all(line.as_bytes())?;
        tx.write_all(b"\n")?;
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        let n = reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    #[test]
    fn forwards_then_kills_then_restores() {
        let upstream = spawn_echo_upstream();
        let proxy = FaultProxy::spawn(upstream).expect("proxy");
        let timeout = Duration::from_secs(2);

        assert_eq!(
            roundtrip(proxy.addr(), "hello", timeout).unwrap(),
            "echo:hello"
        );

        proxy.control().set(ProxyMode::Dead);
        // Existing-and-new connections both read as EOF/refusal.
        assert!(roundtrip(proxy.addr(), "gone", timeout).is_err());

        proxy.control().set(ProxyMode::Forward);
        assert_eq!(
            roundtrip(proxy.addr(), "back", timeout).unwrap(),
            "echo:back"
        );
    }

    #[test]
    fn stall_and_drop_turn_into_timeouts() {
        let upstream = spawn_echo_upstream();
        let proxy = FaultProxy::spawn(upstream).expect("proxy");

        proxy
            .control()
            .set(ProxyMode::Stall(Duration::from_secs(5)));
        let err = roundtrip(proxy.addr(), "slow", Duration::from_millis(100)).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ),
            "stall must surface as a read timeout, got {err:?}"
        );

        proxy.control().set(ProxyMode::DropReplies);
        let err = roundtrip(proxy.addr(), "void", Duration::from_millis(100)).unwrap_err();
        assert!(matches!(
            err.kind(),
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
        ));
    }

    #[test]
    fn fault_actions_map_to_modes() {
        assert_eq!(FaultAction::Kill.mode(), ProxyMode::Dead);
        assert_eq!(FaultAction::Restore.mode(), ProxyMode::Forward);
        assert_eq!(FaultAction::DropReplies.mode(), ProxyMode::DropReplies);
        assert_eq!(
            FaultAction::Stall(Duration::from_millis(7)).mode(),
            ProxyMode::Stall(Duration::from_millis(7))
        );
    }

    #[test]
    fn unused_read_half_keepalive() {
        // A connection opened while the upstream is gone closes cleanly.
        let upstream = spawn_echo_upstream();
        let proxy = FaultProxy::spawn(upstream).expect("proxy");
        let mut stream = TcpStream::connect(proxy.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        drop(stream.try_clone()); // no writes at all
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half close");
        let mut buf = Vec::new();
        // Proxy sees our EOF and tears the pair down.
        let n = stream.read_to_end(&mut buf).expect("read");
        assert_eq!(n, 0);
    }
}
