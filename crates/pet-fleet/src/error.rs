//! Fleet-level failures.
//!
//! The coordinator distinguishes three ways a distributed estimation can go
//! wrong: the caller asked for something the fleet cannot do
//! ([`FleetError::Config`]), the network failed in a way retries could not
//! absorb ([`FleetError::Io`] / [`FleetError::Protocol`]), or enough
//! readers died that a round could not gather its quorum
//! ([`FleetError::QuorumLost`] — the same [`QuorumLost`] value the
//! in-process `pet-sim` controller reports, so the two stay comparable in
//! tests).

use pet_sim::multireader::QuorumLost;
use std::fmt;

/// Why a fleet estimation did not produce a report.
#[derive(Debug)]
pub enum FleetError {
    /// The spec/config combination is invalid (bad quorum, zero-probe
    /// config, coverage referencing nonexistent zones, …).
    Config(String),
    /// An unrecoverable I/O failure outside the per-round miss handling
    /// (e.g. no agent could ever be reached).
    Io(std::io::Error),
    /// An agent answered with something that is not a valid reader-round
    /// reply in a way that cannot be treated as a per-round miss.
    Protocol(String),
    /// A round gathered fewer answering readers than the configured
    /// quorum.
    QuorumLost(QuorumLost),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "invalid fleet configuration: {msg}"),
            Self::Io(e) => write!(f, "fleet i/o failure: {e}"),
            Self::Protocol(msg) => write!(f, "fleet protocol violation: {msg}"),
            Self::QuorumLost(lost) => write!(f, "{lost}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::QuorumLost(lost) => Some(lost),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<QuorumLost> for FleetError {
    fn from(lost: QuorumLost) -> Self {
        Self::QuorumLost(lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failed_round() {
        let e = FleetError::QuorumLost(QuorumLost {
            round: 7,
            answered: 1,
            quorum: 2,
        });
        assert!(e.to_string().contains("round 7"));
        assert!(e.to_string().contains("1 of 2"));
    }

    #[test]
    fn io_errors_convert() {
        let e: FleetError = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "x").into();
        assert!(matches!(e, FleetError::Io(_)));
    }
}
