//! One coordinator-side connection to a reader agent.
//!
//! A [`ReaderLink`] owns the TCP client for one agent and implements the
//! per-round failure discipline:
//!
//! - **Transient faults retry.** Connect failures, connection resets, and
//!   `overloaded` replies are retried with exponential backoff, up to
//!   [`RetryPolicy::tries`] attempts inside the round's deadline budget.
//! - **Stragglers miss, they don't block.** The round deadline is applied
//!   as the socket read timeout; a reader that doesn't answer in time is a
//!   *miss* for this round, and the connection is dropped (a late reply on
//!   a kept connection would desynchronize the line framing).
//! - **Repeat offenders are declared dead.** After
//!   [`RetryPolicy::dead_after`] consecutive misses the link stops being
//!   contacted at all — the administrative mirror of a killed agent.
//!
//! A miss is never an error at this layer: the coordinator's quorum rule
//! decides whether the round (and the session) survives it.

use crate::metrics::FleetMetrics;
use pet_server::json::Json;
use pet_server::Client;
use std::io::ErrorKind;
use std::time::{Duration, Instant};

/// Retry discipline for transient agent failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per round (first try included). At least 1.
    pub tries: u32,
    /// Base backoff before the second attempt; doubles per retry.
    pub backoff: Duration,
    /// Consecutive missed rounds after which the reader is declared dead
    /// and no longer contacted.
    pub dead_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            tries: 3,
            backoff: Duration::from_millis(10),
            dead_after: 2,
        }
    }
}

/// Per-reader outcome counters, reported in the final
/// [`crate::FleetReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReaderStats {
    /// Rounds this reader answered in time.
    pub ok_rounds: u32,
    /// Rounds this reader missed (timeout, death, malformed reply).
    pub missed_rounds: u32,
    /// Transient-failure retries (reconnects, overload backoffs).
    pub retries: u32,
    /// Whether the coordinator declared the reader dead.
    pub dead: bool,
}

/// A parsed `reader-round` reply: the shard population and the raw
/// responder count for every prefix length `1..=height`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundReport {
    /// Tags in the agent's zone shard.
    pub population: u64,
    /// `counts[len-1]` = responders matching the first `len` path bits.
    pub counts: Vec<u64>,
}

/// Parses a reply line into a [`RoundReport`].
///
/// Returns `Ok(Some(..))` for a well-formed success, `Ok(None)` for a
/// well-formed *retryable* error (`overloaded`), and `Err` with the error
/// code or shape problem otherwise.
fn parse_round_reply(reply: &str, height: u32) -> Result<Option<RoundReport>, String> {
    let root = Json::parse(reply).map_err(|e| format!("unparseable reply: {e}"))?;
    let ok = root
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or_else(|| "reply missing \"ok\"".to_string())?;
    if !ok {
        let code = root
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown");
        if code == "overloaded" {
            return Ok(None);
        }
        return Err(format!("agent error: {code}"));
    }
    let population = root
        .get("population")
        .and_then(Json::as_u64)
        .ok_or_else(|| "reply missing \"population\"".to_string())?;
    let counts: Vec<u64> = root
        .get("counts")
        .and_then(Json::as_arr)
        .ok_or_else(|| "reply missing \"counts\"".to_string())?
        .iter()
        .map(|j| j.as_u64().ok_or_else(|| "non-integer count".to_string()))
        .collect::<Result<_, _>>()?;
    if counts.len() != height as usize {
        return Err(format!("expected {height} counts, got {}", counts.len()));
    }
    Ok(Some(RoundReport { population, counts }))
}

/// The coordinator's handle to one reader agent.
#[derive(Debug)]
pub struct ReaderLink {
    addr: String,
    index: usize,
    client: Option<Client>,
    consecutive_misses: u32,
    /// Outcome counters for the final report.
    pub stats: ReaderStats,
}

impl ReaderLink {
    /// A link to the agent at `addr` (connected lazily on first use).
    #[must_use]
    pub fn new(addr: impl Into<String>, index: usize) -> Self {
        Self {
            addr: addr.into(),
            index,
            client: None,
            consecutive_misses: 0,
            stats: ReaderStats::default(),
        }
    }

    /// The agent's address.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether this reader has been declared dead.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.stats.dead
    }

    /// Records a round this reader never got to answer (already dead, or
    /// the session failed before its slot).
    pub fn record_skip(&mut self) {
        self.stats.missed_rounds += 1;
    }

    fn record_miss(&mut self, retry: &RetryPolicy, metrics: &FleetMetrics) {
        self.stats.missed_rounds += 1;
        self.consecutive_misses += 1;
        metrics.reader_miss(self.index);
        if self.consecutive_misses >= retry.dead_after {
            self.stats.dead = true;
        }
    }

    fn record_retry(&mut self, metrics: &FleetMetrics) {
        self.stats.retries += 1;
        metrics.reader_retry(self.index);
    }

    /// Sends one round request and waits for the report within `deadline`.
    ///
    /// `None` means this reader missed the round — already dead, timed
    /// out, exhausted its transient retries, or answered garbage. The
    /// caller's quorum rule decides what that costs.
    pub fn round_trip(
        &mut self,
        line: &str,
        height: u32,
        deadline: Duration,
        retry: &RetryPolicy,
        metrics: &FleetMetrics,
    ) -> Option<RoundReport> {
        if self.stats.dead {
            self.record_skip();
            return None;
        }
        let started = Instant::now();
        let mut backoff = retry.backoff;
        for attempt in 0..retry.tries.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            if started.elapsed() >= deadline {
                break;
            }
            let client = match self.client.take() {
                Some(c) => c,
                None => match Client::connect(&self.addr) {
                    Ok(c) => c,
                    Err(_) => {
                        self.record_retry(metrics);
                        continue;
                    }
                },
            };
            let mut client = client;
            let remaining = deadline.saturating_sub(started.elapsed());
            if remaining.is_zero() || client.set_read_timeout(Some(remaining)).is_err() {
                break;
            }
            metrics.request();
            match client.roundtrip(line) {
                Ok(reply) => match parse_round_reply(&reply, height) {
                    Ok(Some(report)) => {
                        self.client = Some(client);
                        self.consecutive_misses = 0;
                        self.stats.ok_rounds += 1;
                        metrics.reader_ok(self.index);
                        return Some(report);
                    }
                    // Overloaded: the connection is fine, the agent is
                    // busy — back off and retry.
                    Ok(None) => {
                        self.client = Some(client);
                        self.record_retry(metrics);
                    }
                    // Malformed or hard error: miss now; the dropped
                    // connection guards against framing desync.
                    Err(_) => break,
                },
                Err(e) if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) => {
                    // Straggler past the deadline: a late reply must not
                    // linger on the wire, so the connection dies with the
                    // round.
                    break;
                }
                // EOF / reset: reconnect and retry within budget.
                Err(_) => self.record_retry(metrics),
            }
        }
        self.record_miss(retry, metrics);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_success_reply() {
        let reply = r#"{"id":"r1","ok":true,"verb":"reader-round","population":7,"height":4,"counts":[7,3,1,0]}"#;
        let report = parse_round_reply(reply, 4).unwrap().unwrap();
        assert_eq!(report.population, 7);
        assert_eq!(report.counts, vec![7, 3, 1, 0]);
    }

    #[test]
    fn overload_is_retryable_other_errors_are_not() {
        let overloaded = r#"{"id":"r1","ok":false,"error":"overloaded"}"#;
        assert_eq!(parse_round_reply(overloaded, 4).unwrap(), None);
        let bad = r#"{"id":"r1","ok":false,"error":"bad_request"}"#;
        assert!(parse_round_reply(bad, 4).is_err());
    }

    #[test]
    fn count_shape_is_enforced() {
        let short = r#"{"id":"r1","ok":true,"verb":"reader-round","population":7,"height":4,"counts":[7,3]}"#;
        assert!(parse_round_reply(short, 4).is_err());
        assert!(parse_round_reply("not json", 4).is_err());
    }

    #[test]
    fn unreachable_agent_misses_and_eventually_dies() {
        let metrics = FleetMetrics::default();
        // Reserved port with no listener: connects fail fast.
        let mut link = ReaderLink::new("127.0.0.1:1", 0);
        let retry = RetryPolicy {
            tries: 2,
            backoff: Duration::from_millis(1),
            dead_after: 2,
        };
        for _ in 0..2 {
            let got = link.round_trip("{}", 4, Duration::from_millis(200), &retry, &metrics);
            assert!(got.is_none());
        }
        assert!(link.is_dead());
        assert_eq!(link.stats.missed_rounds, 2);
        assert!(link.stats.retries >= 2);
        // Dead links are skipped without touching the network.
        let got = link.round_trip("{}", 4, Duration::from_millis(200), &retry, &metrics);
        assert!(got.is_none());
        assert_eq!(link.stats.missed_rounds, 3);
        assert_eq!(metrics.snapshot().counter("fleet.reader.0.miss"), 2);
    }
}
