//! End-to-end fleet battery: real coordinator, real agents, real sockets.
//!
//! The load-bearing property is **simulator equivalence**: a networked
//! fleet on seeds `(deploy_seed, session_seed)` must produce bit-for-bit
//! the same estimate as `pet_sim::multireader` on the same seeds — for
//! perfect channels, lossy per-reader channels (re-probes included),
//! and kill schedules. Everything else (quorum failures, stall/drop
//! drills, duplicate insensitivity) rides on top of that pin.

use pet_core::config::{Mitigation, PetConfig, TagMode};
use pet_fleet::{
    run_fleet, Coordinator, FaultAction, FaultEvent, FaultProxy, FleetConfig, FleetError,
    FleetSpec, RetryPolicy,
};
use pet_phy::channel::{ChannelModel, LossyChannel};
use pet_server::{serve, ServerConfig, ServerHandle};
use pet_sim::multireader::{Kill, OutagePlan, QuorumLost};
use pet_stats::accuracy::Accuracy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn pet_config() -> PetConfig {
    PetConfig::builder()
        .accuracy(Accuracy::new(0.2, 0.2).unwrap())
        .build()
        .unwrap()
}

fn spawn_agents(n: usize) -> Vec<ServerHandle> {
    (0..n)
        .map(|_| serve(&ServerConfig::default()).expect("bind agent"))
        .collect()
}

fn agent_addrs(handles: &[ServerHandle]) -> Vec<String> {
    handles.iter().map(|h| h.addr().to_string()).collect()
}

fn shutdown_all(handles: Vec<ServerHandle>) {
    for h in &handles {
        h.shutdown();
    }
    for h in handles {
        h.join();
    }
}

/// Perfect channels: the wire merge equals the in-process controller, bit
/// for bit, on the same seeds.
#[test]
fn fleet_merge_is_bit_for_bit_equal_to_the_simulator() {
    let spec = FleetSpec {
        tags: 3_000,
        zones: 4,
        deploy_seed: 13,
        coverages: vec![vec![0, 1], vec![2, 3]],
    };
    let agents = spawn_agents(2);
    let config = FleetConfig::new(pet_config(), 32, 14);
    let fleet = run_fleet(&spec, &config, &agent_addrs(&agents)).expect("fleet run");
    shutdown_all(agents);

    let mut rng = StdRng::seed_from_u64(14);
    let sim = spec
        .deployment()
        .try_estimate_with_outages(
            &pet_config(),
            32,
            ChannelModel::Perfect,
            &OutagePlan::default(),
            &mut rng,
        )
        .expect("sim run");

    assert_eq!(fleet.estimate.to_bits(), sim.estimate.to_bits());
    assert_eq!(
        fleet.mean_prefix_len.to_bits(),
        sim.mean_prefix_len.to_bits()
    );
    assert_eq!(fleet.controller_slots, sim.controller_slots);
    assert_eq!(fleet.covered_tags, sim.covered_tags);
    assert_eq!(fleet.full_rounds, 32);
    assert_eq!(fleet.partial_rounds, 0);
    assert!(!fleet.degraded);
    assert!((fleet.effective_coverage - 1.0).abs() < f64::EPSILON);
    // Every reader answered every round, over real sockets.
    for stats in &fleet.readers {
        assert_eq!(stats.ok_rounds, 32);
        assert_eq!(stats.missed_rounds, 0);
        assert!(!stats.dead);
    }
    assert_eq!(fleet.telemetry.counter("fleet.rounds.full"), 32);
}

/// Lossy per-reader channels and re-probe mitigation: the coordinator
/// applies loss to raw counts from the shared noise stream, so even the
/// re-probed slots match the simulator exactly.
#[test]
fn lossy_channels_and_reprobes_match_the_simulator_bit_for_bit() {
    let pet = PetConfig::builder()
        .accuracy(Accuracy::new(0.2, 0.2).unwrap())
        .mitigation(Mitigation::ReProbe { probes: 2 })
        .build()
        .unwrap();
    let spec = FleetSpec {
        tags: 2_500,
        zones: 4,
        deploy_seed: 23,
        coverages: vec![vec![0, 1], vec![1, 2], vec![2, 3]],
    };
    let lossy = ChannelModel::Lossy(LossyChannel::new(0.05, 0.0).unwrap());
    let agents = spawn_agents(3);
    let mut config = FleetConfig::new(pet, 24, 24);
    config.channel = lossy;
    let fleet = run_fleet(&spec, &config, &agent_addrs(&agents)).expect("fleet run");
    shutdown_all(agents);

    let mut rng = StdRng::seed_from_u64(24);
    let sim = spec
        .deployment()
        .try_estimate_with_outages(&pet, 24, lossy, &OutagePlan::default(), &mut rng)
        .expect("sim run");

    assert_eq!(fleet.estimate.to_bits(), sim.estimate.to_bits());
    assert_eq!(fleet.controller_slots, sim.controller_slots);
}

/// Active tag mode ships the per-round hash seed over the wire (as a hex
/// scalar); agents rebuild their shard codes each round and still match
/// the simulator bit for bit.
#[test]
fn active_tag_mode_round_seeds_travel_the_wire() {
    let pet = PetConfig::builder()
        .accuracy(Accuracy::new(0.2, 0.2).unwrap())
        .tag_mode(TagMode::ActivePerRound)
        .build()
        .unwrap();
    let spec = FleetSpec {
        tags: 2_000,
        zones: 2,
        deploy_seed: 33,
        coverages: vec![vec![0], vec![1]],
    };
    let agents = spawn_agents(2);
    let config = FleetConfig::new(pet, 16, 34);
    let fleet = run_fleet(&spec, &config, &agent_addrs(&agents)).expect("fleet run");
    shutdown_all(agents);

    let mut rng = StdRng::seed_from_u64(34);
    let sim = spec
        .deployment()
        .try_estimate_with_outages(
            &pet,
            16,
            ChannelModel::Perfect,
            &OutagePlan::default(),
            &mut rng,
        )
        .expect("sim run");
    assert_eq!(fleet.estimate.to_bits(), sim.estimate.to_bits());
    assert_eq!(fleet.controller_slots, sim.controller_slots);
}

/// The acceptance drill: a 3-reader fleet loses one reader mid-session
/// (killed at the wire by the fault proxy), keeps its quorum of 2, still
/// returns an estimate, reports the degraded coverage explicitly — and the
/// whole degraded run equals the simulator under the same kill schedule.
#[test]
fn killed_reader_keeps_quorum_and_reports_degraded_coverage() {
    let spec = FleetSpec {
        tags: 4_000,
        zones: 3,
        deploy_seed: 21,
        coverages: vec![vec![0], vec![1], vec![2]],
    };
    let agents = spawn_agents(3);
    let proxy = FaultProxy::spawn(agents[2].addr()).expect("proxy");
    let mut addrs = agent_addrs(&agents);
    addrs[2] = proxy.addr().to_string();

    let mut config = FleetConfig::new(pet_config(), 16, 22);
    config.quorum = 2;
    config.round_deadline = Duration::from_secs(2);
    config.retry = RetryPolicy {
        tries: 2,
        backoff: Duration::from_millis(2),
        dead_after: 2,
    };
    config.faults = vec![FaultEvent {
        round: 8,
        reader: 2,
        action: FaultAction::Kill,
    }];
    let mut coord = Coordinator::new(spec.clone(), config, &addrs).expect("coordinator");
    coord.set_control(2, proxy.control());
    let fleet = coord.run().expect("degraded fleet still estimates");
    shutdown_all(agents);

    assert_eq!(fleet.full_rounds, 8);
    assert_eq!(fleet.partial_rounds, 8);
    assert!(fleet.degraded, "losing a reader must be reported");
    assert!(
        fleet.effective_coverage > 0.5 && fleet.effective_coverage < 1.0,
        "coverage {}",
        fleet.effective_coverage
    );
    assert!(fleet.readers[2].dead, "killed reader declared dead");
    assert_eq!(fleet.readers[2].ok_rounds, 8);
    assert_eq!(fleet.readers[2].missed_rounds, 8);
    assert!(fleet.estimate > 0.0);
    assert!(fleet.telemetry.counter("fleet.rounds.partial") == 8);

    // Same kill, in process: bit-for-bit agreement, degraded run included.
    let mut rng = StdRng::seed_from_u64(22);
    let sim = spec
        .deployment()
        .try_estimate_with_outages(
            &pet_config(),
            16,
            ChannelModel::Perfect,
            &OutagePlan {
                kills: vec![Kill {
                    round: 8,
                    reader: 2,
                }],
                quorum: 2,
            },
            &mut rng,
        )
        .expect("sim run");
    assert_eq!(fleet.estimate.to_bits(), sim.estimate.to_bits());
    assert_eq!(fleet.controller_slots, sim.controller_slots);
    assert_eq!(
        fleet.effective_coverage.to_bits(),
        sim.effective_coverage.to_bits()
    );
}

/// Losing the whole fleet mid-session fails with the same explicit
/// `QuorumLost` the simulator reports for the same schedule.
#[test]
fn quorum_loss_is_the_same_explicit_error_as_the_simulator() {
    let spec = FleetSpec {
        tags: 1_000,
        zones: 2,
        deploy_seed: 31,
        coverages: vec![vec![0], vec![1]],
    };
    let agents = spawn_agents(2);
    let proxies: Vec<FaultProxy> = agents
        .iter()
        .map(|h| FaultProxy::spawn(h.addr()).expect("proxy"))
        .collect();
    let addrs: Vec<String> = proxies.iter().map(|p| p.addr().to_string()).collect();

    let mut config = FleetConfig::new(pet_config(), 16, 32);
    config.retry = RetryPolicy {
        tries: 2,
        backoff: Duration::from_millis(2),
        dead_after: 2,
    };
    config.faults = vec![
        FaultEvent {
            round: 3,
            reader: 0,
            action: FaultAction::Kill,
        },
        FaultEvent {
            round: 5,
            reader: 1,
            action: FaultAction::Kill,
        },
    ];
    let mut coord = Coordinator::new(spec.clone(), config, &addrs).expect("coordinator");
    for (i, p) in proxies.iter().enumerate() {
        coord.set_control(i, p.control());
    }
    let err = coord.run().expect_err("no readers left, no estimate");
    shutdown_all(agents);

    let expected = QuorumLost {
        round: 5,
        answered: 0,
        quorum: 1,
    };
    match &err {
        FleetError::QuorumLost(lost) => assert_eq!(*lost, expected),
        other => panic!("expected QuorumLost, got {other}"),
    }

    let mut rng = StdRng::seed_from_u64(32);
    let sim_err = spec
        .deployment()
        .try_estimate_with_outages(
            &pet_config(),
            16,
            ChannelModel::Perfect,
            &OutagePlan {
                kills: vec![
                    Kill {
                        round: 3,
                        reader: 0,
                    },
                    Kill {
                        round: 5,
                        reader: 1,
                    },
                ],
                quorum: 1,
            },
            &mut rng,
        )
        .expect_err("sim loses quorum too");
    assert_eq!(sim_err, expected);
}

/// A stalled reader misses rounds (deadline, not hang) and rejoins after
/// the fault clears — no administrative death when `dead_after` allows it.
#[test]
fn stalled_reader_misses_and_rejoins() {
    let spec = FleetSpec {
        tags: 1_500,
        zones: 2,
        deploy_seed: 41,
        coverages: vec![vec![0], vec![1]],
    };
    let agents = spawn_agents(2);
    let proxy = FaultProxy::spawn(agents[1].addr()).expect("proxy");
    let mut addrs = agent_addrs(&agents);
    addrs[1] = proxy.addr().to_string();

    let mut config = FleetConfig::new(pet_config(), 10, 42);
    config.round_deadline = Duration::from_millis(250);
    config.retry = RetryPolicy {
        tries: 1,
        backoff: Duration::from_millis(1),
        dead_after: 100, // a stall is not a death sentence here
    };
    config.faults = vec![
        FaultEvent {
            round: 4,
            reader: 1,
            action: FaultAction::Stall(Duration::from_secs(5)),
        },
        FaultEvent {
            round: 6,
            reader: 1,
            action: FaultAction::Restore,
        },
    ];
    let mut coord = Coordinator::new(spec, config, &addrs).expect("coordinator");
    coord.set_control(1, proxy.control());
    let fleet = coord.run().expect("stall degrades, not fails");
    shutdown_all(agents);

    assert_eq!(
        fleet.partial_rounds, 2,
        "rounds 4 and 5 run without reader 1"
    );
    assert_eq!(fleet.full_rounds, 8);
    assert!(fleet.degraded);
    assert!(!fleet.readers[1].dead, "reader rejoined after the stall");
    assert_eq!(fleet.readers[1].missed_rounds, 2);
    assert_eq!(fleet.readers[1].ok_rounds, 8);
    assert!(fleet.effective_coverage < 1.0);
}

/// A reader whose replies vanish (one-way partition) times out per round,
/// gets declared dead, and the run still matches the simulator's kill
/// schedule — drop-replies and crash are indistinguishable merges.
#[test]
fn dropped_replies_become_a_clean_kill() {
    let spec = FleetSpec {
        tags: 1_200,
        zones: 2,
        deploy_seed: 51,
        coverages: vec![vec![0], vec![1]],
    };
    let agents = spawn_agents(2);
    let proxy = FaultProxy::spawn(agents[1].addr()).expect("proxy");
    let mut addrs = agent_addrs(&agents);
    addrs[1] = proxy.addr().to_string();

    let mut config = FleetConfig::new(pet_config(), 8, 52);
    config.round_deadline = Duration::from_millis(250);
    config.retry = RetryPolicy {
        tries: 1,
        backoff: Duration::from_millis(1),
        dead_after: 2,
    };
    config.faults = vec![FaultEvent {
        round: 2,
        reader: 1,
        action: FaultAction::DropReplies,
    }];
    let mut coord = Coordinator::new(spec.clone(), config, &addrs).expect("coordinator");
    coord.set_control(1, proxy.control());
    let fleet = coord.run().expect("drop degrades, not fails");
    shutdown_all(agents);

    assert!(fleet.readers[1].dead);
    assert_eq!(fleet.full_rounds, 2);
    assert_eq!(fleet.partial_rounds, 6);

    let mut rng = StdRng::seed_from_u64(52);
    let sim = spec
        .deployment()
        .try_estimate_with_outages(
            &pet_config(),
            8,
            ChannelModel::Perfect,
            &OutagePlan {
                kills: vec![Kill {
                    round: 2,
                    reader: 1,
                }],
                quorum: 1,
            },
            &mut rng,
        )
        .expect("sim run");
    assert_eq!(fleet.estimate.to_bits(), sim.estimate.to_bits());
    assert_eq!(fleet.controller_slots, sim.controller_slots);
}

/// §4.6.3 duplicate insensitivity over real sockets: two agents with fully
/// overlapping coverage merge to exactly the single-reader estimate.
#[test]
fn overlapping_agents_do_not_double_count_over_the_wire() {
    let full = vec![0, 1];
    let single_spec = FleetSpec {
        tags: 2_000,
        zones: 2,
        deploy_seed: 61,
        coverages: vec![full.clone()],
    };
    let dup_spec = FleetSpec {
        tags: 2_000,
        zones: 2,
        deploy_seed: 61,
        coverages: vec![full.clone(), full],
    };

    let single_agents = spawn_agents(1);
    let single = run_fleet(
        &single_spec,
        &FleetConfig::new(pet_config(), 16, 62),
        &agent_addrs(&single_agents),
    )
    .expect("single run");
    shutdown_all(single_agents);

    let dup_agents = spawn_agents(2);
    let dup = run_fleet(
        &dup_spec,
        &FleetConfig::new(pet_config(), 16, 62),
        &agent_addrs(&dup_agents),
    )
    .expect("dup run");
    shutdown_all(dup_agents);

    assert_eq!(single.estimate.to_bits(), dup.estimate.to_bits());
    assert_eq!(single.controller_slots, dup.controller_slots);
    assert_eq!(single.covered_tags, dup.covered_tags);
}

/// Identical runs produce identical digests; a different session seed does
/// not — the cheap conformance check the CI fleet smoke relies on.
#[test]
fn digests_pin_reproducibility() {
    let spec = FleetSpec {
        tags: 1_000,
        zones: 2,
        deploy_seed: 71,
        coverages: vec![vec![0], vec![1]],
    };
    let agents = spawn_agents(2);
    let addrs = agent_addrs(&agents);
    let a = run_fleet(&spec, &FleetConfig::new(pet_config(), 12, 72), &addrs).expect("run a");
    let b = run_fleet(&spec, &FleetConfig::new(pet_config(), 12, 72), &addrs).expect("run b");
    let c = run_fleet(&spec, &FleetConfig::new(pet_config(), 12, 73), &addrs).expect("run c");
    shutdown_all(agents);
    assert_eq!(a.digest(), b.digest());
    assert_ne!(a.digest(), c.digest());
}
