//! Air-time cost accounting.
//!
//! The paper's efficiency metric is the total number of time slots (§5.1);
//! §4.6.2 additionally discusses reader command overhead in bits. Both are
//! tracked here so every protocol reports comparable costs.

use crate::slot::SlotOutcome;
use std::ops::{Add, AddAssign};

/// Accumulated reader-side costs for one protocol execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AirMetrics {
    /// Total slots elapsed.
    pub slots: u64,
    /// Idle slots heard.
    pub idle: u64,
    /// Singleton slots heard.
    pub singleton: u64,
    /// Collision slots heard.
    pub collision: u64,
    /// Total command bits broadcast by the reader.
    pub command_bits: u64,
    /// Total tag transmissions across all slots (the tag-side energy
    /// driver: every response costs the tag a backscatter).
    pub tag_responses: u64,
}

impl AirMetrics {
    /// Records one slot with the number of tags that transmitted.
    pub fn record_slot(&mut self, command_bits: u32, responders: u64, outcome: SlotOutcome) {
        self.tag_responses += responders;
        self.record(command_bits, outcome);
    }

    /// Records one slot (legacy form without responder accounting).
    pub fn record(&mut self, command_bits: u32, outcome: SlotOutcome) {
        self.slots += 1;
        self.command_bits += u64::from(command_bits);
        match outcome {
            SlotOutcome::Idle => self.idle += 1,
            SlotOutcome::Singleton => self.singleton += 1,
            SlotOutcome::Collision => self.collision += 1,
        }
    }

    /// Busy (non-idle) slots heard.
    #[must_use]
    pub fn busy(&self) -> u64 {
        self.singleton + self.collision
    }

    /// Internal consistency: category counts must sum to `slots`.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.idle + self.singleton + self.collision == self.slots
    }
}

impl Add for AirMetrics {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            slots: self.slots + rhs.slots,
            idle: self.idle + rhs.idle,
            singleton: self.singleton + rhs.singleton,
            collision: self.collision + rhs.collision,
            command_bits: self.command_bits + rhs.command_bits,
            tag_responses: self.tag_responses + rhs.tag_responses,
        }
    }
}

impl AddAssign for AirMetrics {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_categorizes() {
        let mut m = AirMetrics::default();
        m.record(32, SlotOutcome::Idle);
        m.record(5, SlotOutcome::Singleton);
        m.record(1, SlotOutcome::Collision);
        m.record(1, SlotOutcome::Collision);
        assert_eq!(m.slots, 4);
        assert_eq!(m.idle, 1);
        assert_eq!(m.singleton, 1);
        assert_eq!(m.collision, 2);
        assert_eq!(m.busy(), 3);
        assert_eq!(m.command_bits, 39);
        assert!(m.is_consistent());
    }

    #[test]
    fn addition_is_componentwise() {
        let mut a = AirMetrics::default();
        a.record(8, SlotOutcome::Idle);
        let mut b = AirMetrics::default();
        b.record(16, SlotOutcome::Collision);
        let c = a + b;
        assert_eq!(c.slots, 2);
        assert_eq!(c.idle, 1);
        assert_eq!(c.collision, 1);
        assert_eq!(c.command_bits, 24);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn responder_accounting() {
        let mut m = AirMetrics::default();
        m.record_slot(5, 0, SlotOutcome::Idle);
        m.record_slot(5, 7, SlotOutcome::Collision);
        m.record_slot(5, 1, SlotOutcome::Singleton);
        assert_eq!(m.tag_responses, 8);
        assert_eq!(m.slots, 3);
        assert!(m.is_consistent());
    }

    #[test]
    fn default_is_zeroed_and_consistent() {
        let m = AirMetrics::default();
        assert_eq!(m.slots, 0);
        assert!(m.is_consistent());
    }
}
