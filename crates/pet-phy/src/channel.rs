//! Physical channel models.
//!
//! The paper evaluates under a lossless channel ("we assume that there is no
//! transmission loss between RFID tags and the reader", §5.1) —
//! [`PerfectChannel`]. [`LossyChannel`] is our robustness extension: it
//! drops each tag response independently and can hallucinate busy slots,
//! letting the benches quantify how PET's accuracy degrades off the paper's
//! assumptions.

use crate::slot::SlotOutcome;
use rand::Rng;
use std::fmt;

/// Maps the true number of simultaneous tag responses to what the reader
/// detects.
pub trait Channel {
    /// Simulates one slot with `responders` tags transmitting.
    fn transmit<R: Rng + ?Sized>(&mut self, responders: u64, rng: &mut R) -> SlotOutcome;
}

/// The paper's lossless channel: every response is detected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfectChannel;

impl Channel for PerfectChannel {
    fn transmit<R: Rng + ?Sized>(&mut self, responders: u64, _rng: &mut R) -> SlotOutcome {
        SlotOutcome::from_detected(responders)
    }
}

/// A channel that loses responses and occasionally reports phantom energy.
///
/// Each responder's transmission is missed independently with probability
/// `miss`; an idle slot is misread as a singleton with probability
/// `false_busy` (reader-side noise floor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossyChannel {
    miss: f64,
    false_busy: f64,
}

/// Error constructing a [`LossyChannel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbabilityOutOfRange {
    /// Name of the offending parameter.
    pub parameter: &'static str,
}

impl fmt::Display for ProbabilityOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} must be a probability in [0, 1)", self.parameter)
    }
}

impl std::error::Error for ProbabilityOutOfRange {}

impl LossyChannel {
    /// Creates a lossy channel.
    ///
    /// NaN is rejected (it fails the range check), and negative zero is
    /// accepted but normalized to `+0.0`, so `transmit`'s `p > 0.0` fast
    /// paths and the accessors treat it as exactly "no loss".
    ///
    /// # Errors
    ///
    /// Returns an error if either probability lies outside `[0, 1)`.
    pub fn new(miss: f64, false_busy: f64) -> Result<Self, ProbabilityOutOfRange> {
        fn checked(p: f64, parameter: &'static str) -> Result<f64, ProbabilityOutOfRange> {
            if !(0.0..1.0).contains(&p) || !p.is_finite() {
                return Err(ProbabilityOutOfRange { parameter });
            }
            Ok(if p == 0.0 { 0.0 } else { p })
        }
        Ok(Self {
            miss: checked(miss, "miss")?,
            false_busy: checked(false_busy, "false_busy")?,
        })
    }

    /// Per-responder miss probability.
    #[must_use]
    pub fn miss(&self) -> f64 {
        self.miss
    }

    /// Phantom-busy probability on idle slots.
    #[must_use]
    pub fn false_busy(&self) -> f64 {
        self.false_busy
    }
}

impl Channel for LossyChannel {
    fn transmit<R: Rng + ?Sized>(&mut self, responders: u64, rng: &mut R) -> SlotOutcome {
        // Detected responses ~ Binomial(responders, 1 − miss). Sample
        // directly for small counts; for large counts we only need to know
        // whether ≥2 survive, so short-circuit once the class is decided.
        let mut detected: u64 = 0;
        for _ in 0..responders {
            if !rng.random_bool(self.miss) {
                detected += 1;
                if detected >= 2 {
                    break;
                }
            }
        }
        if detected == 0 && self.false_busy > 0.0 && rng.random_bool(self.false_busy) {
            detected = 1;
        }
        SlotOutcome::from_detected(detected)
    }
}

/// A monomorphic channel choice, for code that needs to treat protocol
/// implementations as trait objects (e.g. the experiment runner iterating
/// over estimators).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ChannelModel {
    /// The paper's lossless channel.
    #[default]
    Perfect,
    /// A lossy channel with the given parameters.
    Lossy(LossyChannel),
}

impl Channel for ChannelModel {
    fn transmit<R: Rng + ?Sized>(&mut self, responders: u64, rng: &mut R) -> SlotOutcome {
        match self {
            Self::Perfect => PerfectChannel.transmit(responders, rng),
            Self::Lossy(ch) => ch.transmit(responders, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn channel_model_dispatches() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut perfect = ChannelModel::default();
        assert_eq!(perfect.transmit(2, &mut rng), SlotOutcome::Collision);
        let mut lossy = ChannelModel::Lossy(LossyChannel::new(0.0, 0.0).unwrap());
        assert_eq!(lossy.transmit(1, &mut rng), SlotOutcome::Singleton);
    }

    #[test]
    fn perfect_channel_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ch = PerfectChannel;
        assert_eq!(ch.transmit(0, &mut rng), SlotOutcome::Idle);
        assert_eq!(ch.transmit(1, &mut rng), SlotOutcome::Singleton);
        assert_eq!(ch.transmit(100, &mut rng), SlotOutcome::Collision);
    }

    #[test]
    fn lossy_validation() {
        assert!(LossyChannel::new(0.0, 0.0).is_ok());
        assert!(LossyChannel::new(0.99, 0.0).is_ok());
        assert_eq!(LossyChannel::new(1.0, 0.0).unwrap_err().parameter, "miss");
        assert_eq!(
            LossyChannel::new(0.0, -0.1).unwrap_err().parameter,
            "false_busy"
        );
        assert_eq!(
            LossyChannel::new(f64::NAN, 0.0).unwrap_err().parameter,
            "miss"
        );
    }

    /// NaN must be rejected for *both* parameters — the range check's
    /// comparisons are all false on NaN, so `!contains` catches it.
    #[test]
    fn nan_rejected_for_both_parameters() {
        assert_eq!(
            LossyChannel::new(f64::NAN, 0.0).unwrap_err().parameter,
            "miss"
        );
        assert_eq!(
            LossyChannel::new(0.0, f64::NAN).unwrap_err().parameter,
            "false_busy"
        );
        assert_eq!(
            LossyChannel::new(f64::INFINITY, 0.0).unwrap_err().parameter,
            "miss"
        );
        assert_eq!(
            LossyChannel::new(0.0, f64::NEG_INFINITY)
                .unwrap_err()
                .parameter,
            "false_busy"
        );
    }

    /// `-0.0` satisfies `[0, 1)` (IEEE `-0.0 >= 0.0`), so it is accepted —
    /// but normalized to `+0.0` so accessors and the `false_busy > 0.0`
    /// transmit fast path behave identically to a plain zero.
    #[test]
    fn negative_zero_accepted_and_normalized() {
        let ch = LossyChannel::new(-0.0, -0.0).unwrap();
        assert!(ch.miss().is_sign_positive(), "miss {:?}", ch.miss());
        assert!(
            ch.false_busy().is_sign_positive(),
            "false_busy {:?}",
            ch.false_busy()
        );
        assert_eq!(ch, LossyChannel::new(0.0, 0.0).unwrap());
        // And it behaves exactly like the perfect channel on the stream.
        let mut rng = StdRng::seed_from_u64(9);
        let mut neg = ch;
        for n in [0u64, 1, 2, 7] {
            assert_eq!(neg.transmit(n, &mut rng), SlotOutcome::from_detected(n));
        }
    }

    #[test]
    fn lossy_with_zero_rates_equals_perfect() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ch = LossyChannel::new(0.0, 0.0).unwrap();
        for n in [0u64, 1, 2, 50] {
            assert_eq!(ch.transmit(n, &mut rng), SlotOutcome::from_detected(n));
        }
    }

    #[test]
    fn miss_rate_empirically_correct() {
        // One responder, miss = 0.3 → idle with probability 0.3.
        let mut rng = StdRng::seed_from_u64(3);
        let mut ch = LossyChannel::new(0.3, 0.0).unwrap();
        let trials = 100_000;
        let idle = (0..trials)
            .filter(|_| ch.transmit(1, &mut rng) == SlotOutcome::Idle)
            .count();
        let frac = idle as f64 / trials as f64;
        assert!((frac - 0.3).abs() < 0.01, "idle fraction {frac}");
    }

    #[test]
    fn false_busy_empirically_correct() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ch = LossyChannel::new(0.0, 0.05).unwrap();
        let trials = 100_000;
        let busy = (0..trials)
            .filter(|_| ch.transmit(0, &mut rng).is_busy())
            .count();
        let frac = busy as f64 / trials as f64;
        assert!((frac - 0.05).abs() < 0.005, "phantom-busy fraction {frac}");
    }

    #[test]
    fn heavy_collisions_stay_collisions() {
        // With many responders and mild loss, collisions survive.
        let mut rng = StdRng::seed_from_u64(5);
        let mut ch = LossyChannel::new(0.1, 0.0).unwrap();
        for _ in 0..1000 {
            assert_eq!(ch.transmit(1000, &mut rng), SlotOutcome::Collision);
        }
    }

    #[test]
    fn error_display() {
        let e = LossyChannel::new(2.0, 0.0).unwrap_err();
        assert!(e.to_string().contains("miss"));
    }
}
