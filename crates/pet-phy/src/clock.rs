//! Conversion from slot counts to wall-clock air time.
//!
//! The paper abstracts estimating time as a slot count (§5.1). Real UHF
//! readers spend different amounts of time on idle and busy slots — under
//! EPC C1G2 an idle slot ends after a short no-reply timeout while a busy
//! slot carries a tag reply — so we provide a configurable model with
//! Gen2-flavoured defaults to report seconds alongside slots. This is an
//! extension; all paper-facing comparisons remain in slots.

use crate::metrics::AirMetrics;
use std::time::Duration;

/// Per-slot-type durations used to convert [`AirMetrics`] to air time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeModel {
    /// Duration of an idle slot (reader command + no-reply timeout), µs.
    pub idle_us: f64,
    /// Duration of a busy slot (reader command + tag reply), µs.
    pub busy_us: f64,
    /// Additional reader transmission time per command bit, µs.
    pub us_per_command_bit: f64,
}

impl TimeModel {
    /// Gen2-inspired defaults: 40 kbps reader link (25 µs/bit), ~300 µs
    /// no-reply timeout for idle slots, ~800 µs for a slot carrying an RN16
    /// backscatter reply.
    #[must_use]
    pub fn gen2() -> Self {
        Self {
            idle_us: 300.0,
            busy_us: 800.0,
            us_per_command_bit: 25.0,
        }
    }

    /// A model that charges every slot equally and commands nothing — the
    /// paper's pure slot-count accounting, useful for ratio checks.
    #[must_use]
    pub fn uniform_slots(slot_us: f64) -> Self {
        Self {
            idle_us: slot_us,
            busy_us: slot_us,
            us_per_command_bit: 0.0,
        }
    }

    /// Total air time for the recorded metrics.
    #[must_use]
    pub fn elapsed(&self, m: &AirMetrics) -> Duration {
        let us = self.idle_us * m.idle as f64
            + self.busy_us * (m.singleton + m.collision) as f64
            + self.us_per_command_bit * m.command_bits as f64;
        Duration::from_secs_f64(us.max(0.0) / 1e6)
    }
}

impl Default for TimeModel {
    fn default() -> Self {
        Self::gen2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::SlotOutcome;

    #[test]
    fn uniform_model_counts_slots() {
        let mut m = AirMetrics::default();
        m.record(0, SlotOutcome::Idle);
        m.record(0, SlotOutcome::Collision);
        let t = TimeModel::uniform_slots(1000.0); // 1 ms per slot
        assert_eq!(t.elapsed(&m), Duration::from_millis(2));
    }

    #[test]
    fn gen2_model_charges_components() {
        let mut m = AirMetrics::default();
        m.record(32, SlotOutcome::Idle); // 300 + 32·25 = 1100 µs
        m.record(32, SlotOutcome::Collision); // 800 + 32·25 = 1600 µs
        let t = TimeModel::gen2();
        let us = t.elapsed(&m).as_secs_f64() * 1e6;
        assert!((us - 2700.0).abs() < 1e-6, "got {us}");
    }

    #[test]
    fn busy_slots_cost_more_than_idle_by_default() {
        let t = TimeModel::default();
        assert!(t.busy_us > t.idle_us);
    }

    #[test]
    fn empty_metrics_take_no_time() {
        assert_eq!(
            TimeModel::gen2().elapsed(&AirMetrics::default()),
            Duration::ZERO
        );
    }
}
