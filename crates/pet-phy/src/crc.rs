//! CRC-5-EPC and CRC-16-CCITT, the checksums of the EPC C1G2 air interface.
//!
//! Gen2 protects Query commands with CRC-5 and everything longer (including
//! EPC backscatter) with CRC-16. The PET paper's slot accounting abstracts
//! these away; [`crate::command`] uses them to size *faithful* command
//! frames so the §4.6.2 bit-overhead discussion can also be reported with
//! real framing included.

/// CRC-5-EPC: polynomial x⁵+x³+1 (0x09), initial value 0b01001,
/// no reflection, no final XOR (EPC C1G2 annex F).
#[must_use]
pub fn crc5_epc(bits: &[bool]) -> u8 {
    let mut crc: u8 = 0b01001;
    for &bit in bits {
        let msb = (crc >> 4) & 1 == 1;
        crc = (crc << 1) & 0x1F;
        if msb != bit {
            crc ^= 0x09;
        }
    }
    crc & 0x1F
}

/// CRC-16 as used by Gen2 (ISO/IEC 13239, a.k.a. CRC-16/GENIBUS):
/// polynomial 0x1021, init 0xFFFF, MSB-first, complemented output.
#[must_use]
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    !crc
}

/// Helper: the low `len` bits of `value`, MSB first, as booleans.
#[must_use]
pub fn bits_msb_first(value: u64, len: u32) -> Vec<bool> {
    assert!(len <= 64, "at most 64 bits");
    (0..len).rev().map(|i| (value >> i) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A codeword followed by its own CRC-5 is self-checking: re-running the
    /// CRC over payload‖crc yields the fixed residue 0 for this polynomial
    /// arrangement.
    #[test]
    fn crc5_self_check() {
        for value in [0u64, 1, 0b1010_1010_1010_1010, 0x3FFFFF] {
            let payload = bits_msb_first(value, 22);
            let crc = crc5_epc(&payload);
            let mut framed = payload.clone();
            framed.extend(bits_msb_first(u64::from(crc), 5));
            assert_eq!(crc5_epc(&framed), 0, "value {value:#x}");
        }
    }

    #[test]
    fn crc5_distinguishes_single_bit_flips() {
        let payload = bits_msb_first(0x2AAAAA, 22);
        let base = crc5_epc(&payload);
        for i in 0..payload.len() {
            let mut flipped = payload.clone();
            flipped[i] = !flipped[i];
            assert_ne!(crc5_epc(&flipped), base, "undetected flip at bit {i}");
        }
    }

    /// CRC-16/GENIBUS reference vector: "123456789" → 0xD64E (the ISO 13239
    /// non-reflected variant Gen2 specifies; X.25's reflected cousin would
    /// give 0x906E).
    #[test]
    fn crc16_reference_vector() {
        assert_eq!(crc16_ccitt(b"123456789"), 0xD64E);
    }

    #[test]
    fn crc16_self_check() {
        // Appending the raw (uncomplemented) CRC MSB-first drives the
        // bit-serial register to the zero residue.
        let data = b"PET reproduction";
        let crc = !crc16_ccitt(data); // undo the final complement
        let mut framed = data.to_vec();
        framed.push((crc >> 8) as u8);
        framed.push((crc & 0xFF) as u8);
        // Residue check: running the raw (non-complemented) algorithm over
        // payload + crc gives the fixed magic residue.
        let mut raw: u16 = 0xFFFF;
        for &byte in &framed {
            raw ^= u16::from(byte) << 8;
            for _ in 0..8 {
                raw = if raw & 0x8000 != 0 {
                    (raw << 1) ^ 0x1021
                } else {
                    raw << 1
                };
            }
        }
        assert_eq!(raw, 0);
    }

    #[test]
    fn bits_helper_msb_first() {
        assert_eq!(bits_msb_first(0b101, 3), vec![true, false, true]);
        assert_eq!(bits_msb_first(1, 2), vec![false, true]);
        assert!(bits_msb_first(0, 0).is_empty());
    }
}
