//! Slot-by-slot transcripts for debugging and protocol-trace tests.

use crate::slot::SlotOutcome;
use std::collections::VecDeque;

/// One recorded slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRecord {
    /// Bits broadcast by the reader at the head of the slot.
    pub command_bits: u32,
    /// True number of tags that transmitted.
    pub responders: u64,
    /// What the reader heard.
    pub outcome: SlotOutcome,
}

/// A bounded ring of [`SlotRecord`]s (oldest dropped first).
#[derive(Debug, Clone)]
pub struct Transcript {
    records: VecDeque<SlotRecord>,
    cap: usize,
    dropped: u64,
}

impl Transcript {
    /// Creates a transcript holding at most `cap` records.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "transcript capacity must be positive");
        Self {
            records: VecDeque::with_capacity(cap.min(4096)),
            cap,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, record: SlotRecord) {
        if self.records.len() == self.cap {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Records currently held, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<SlotRecord> {
        self.records.iter().copied().collect()
    }

    /// Number of records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// How many records were evicted due to the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes all records (the drop counter is reset too).
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }

    /// The outcome sequence, for compact protocol-trace assertions.
    #[must_use]
    pub fn outcomes(&self) -> Vec<SlotOutcome> {
        self.records.iter().map(|r| r.outcome).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(responders: u64) -> SlotRecord {
        SlotRecord {
            command_bits: 1,
            responders,
            outcome: SlotOutcome::from_detected(responders),
        }
    }

    #[test]
    fn push_and_read_back() {
        let mut t = Transcript::with_capacity(4);
        assert!(t.is_empty());
        t.push(rec(0));
        t.push(rec(3));
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.outcomes(),
            vec![SlotOutcome::Idle, SlotOutcome::Collision]
        );
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn eviction_drops_oldest() {
        let mut t = Transcript::with_capacity(2);
        t.push(rec(0));
        t.push(rec(1));
        t.push(rec(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.records()[0].responders, 1);
        assert_eq!(t.records()[1].responders, 2);
    }

    #[test]
    fn clear_resets() {
        let mut t = Transcript::with_capacity(1);
        t.push(rec(0));
        t.push(rec(1));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Transcript::with_capacity(0);
    }
}
