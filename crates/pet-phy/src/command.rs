//! Bit-faithful reader command frames (Gen2-flavoured framing for the PET
//! queries of §4.6.2).
//!
//! The paper counts command *payload* bits (32-bit mask / 5-bit `mid` /
//! 1-bit feedback). A real air interface adds a command code, length
//! framing, and a checksum. This module builds those frames so overhead
//! discussions can be had with framing included — without changing the
//! paper-facing accounting (which stays payload-only, as in §4.6.2).

use crate::crc::{bits_msb_first, crc5_epc};

/// Command codes for the PET air interface (4 bits, private range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PetCommandCode {
    /// Round start: carries the estimating path (and optional seed).
    RoundStart = 0b1100,
    /// Prefix query with an explicit mask or length.
    Query = 0b1101,
    /// 1-bit feedback broadcast.
    Feedback = 0b1110,
    /// Match-all presence probe.
    Probe = 0b1111,
}

/// A fully framed reader command: code ‖ payload ‖ CRC-5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandFrame {
    code: PetCommandCode,
    bits: Vec<bool>,
}

impl CommandFrame {
    /// Builds a frame from a code and payload bits (MSB first).
    #[must_use]
    pub fn new(code: PetCommandCode, payload: &[bool]) -> Self {
        let mut bits = bits_msb_first(code as u64, 4);
        bits.extend_from_slice(payload);
        let crc = crc5_epc(&bits);
        bits.extend(bits_msb_first(u64::from(crc), 5));
        Self { code, bits }
    }

    /// A round-start frame carrying an `H`-bit estimating path and an
    /// optional 32-bit seed (active-tag mode).
    #[must_use]
    pub fn round_start(path_bits: u64, height: u32, seed: Option<u32>) -> Self {
        let mut payload = bits_msb_first(path_bits, height);
        if let Some(seed) = seed {
            payload.extend(bits_msb_first(u64::from(seed), 32));
        }
        Self::new(PetCommandCode::RoundStart, &payload)
    }

    /// A query frame carrying the 5-bit prefix length (the §4.6.2 `mid`
    /// encoding).
    #[must_use]
    pub fn query_mid(mid: u32) -> Self {
        Self::new(PetCommandCode::Query, &bits_msb_first(u64::from(mid), 5))
    }

    /// A feedback frame carrying the 1-bit busy indicator.
    #[must_use]
    pub fn feedback(busy: bool) -> Self {
        Self::new(PetCommandCode::Feedback, &[busy])
    }

    /// The command code.
    #[must_use]
    pub fn code(&self) -> PetCommandCode {
        self.code
    }

    /// Total bits on the air, framing included.
    #[must_use]
    pub fn len_bits(&self) -> usize {
        self.bits.len()
    }

    /// The raw bit stream (code ‖ payload ‖ CRC).
    #[must_use]
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Verifies the trailing CRC-5 (how a tag decides to honour the frame).
    #[must_use]
    pub fn check(&self) -> bool {
        crc5_epc(&self.bits) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_self_check() {
        assert!(CommandFrame::round_start(0xDEAD_BEEF, 32, None).check());
        assert!(CommandFrame::round_start(0xDEAD_BEEF, 32, Some(7)).check());
        assert!(CommandFrame::query_mid(17).check());
        assert!(CommandFrame::feedback(true).check());
    }

    #[test]
    fn corrupted_frames_fail_the_check() {
        let frame = CommandFrame::query_mid(17);
        for i in 0..frame.len_bits() {
            let mut bits = frame.bits().to_vec();
            bits[i] = !bits[i];
            assert_ne!(crc5_epc(&bits), 0, "undetected corruption at bit {i}");
        }
    }

    /// Frame sizes: the §4.6.2 payload counts plus 9 framing bits
    /// (4-bit code + 5-bit CRC).
    #[test]
    fn frame_sizes_match_spec() {
        assert_eq!(CommandFrame::query_mid(5).len_bits(), 5 + 9);
        assert_eq!(CommandFrame::feedback(false).len_bits(), 1 + 9);
        assert_eq!(CommandFrame::round_start(0, 32, None).len_bits(), 32 + 9);
        assert_eq!(
            CommandFrame::round_start(0, 32, Some(1)).len_bits(),
            32 + 32 + 9
        );
    }

    #[test]
    fn codes_are_distinct_on_air() {
        let a = CommandFrame::new(PetCommandCode::Query, &[true]);
        let b = CommandFrame::new(PetCommandCode::Feedback, &[true]);
        assert_ne!(a.bits(), b.bits());
        assert_eq!(a.code(), PetCommandCode::Query);
        assert_eq!(b.code(), PetCommandCode::Feedback);
    }
}
