//! Energy accounting for readers and tags.
//!
//! An extension in the spirit of the paper's related work on energy-aware
//! anticollision (Namboodiri & Gao, PerCom'07 \[22\]; Zhou et al., ISLPED'04
//! \[38\]): convert [`AirMetrics`] into reader-side and tag-side energy. The
//! interesting PET property this surfaces: with binary search the first
//! query already uses a ~17-bit prefix, so almost *no* tags respond in a
//! PET round, whereas LoF makes every tag backscatter in every round —
//! PET's per-tag energy is orders of magnitude lower, which matters for
//! battery-assisted tags and for RF regulatory duty cycles.

use crate::metrics::AirMetrics;

/// Converts air metrics to energy figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Reader transmit power while sending commands and CW, milliwatts.
    pub reader_tx_mw: f64,
    /// Reader receive/idle power while listening, milliwatts.
    pub reader_rx_mw: f64,
    /// Duration of one slot, microseconds (flat model; pair with
    /// [`crate::clock::TimeModel`] for per-slot-type durations).
    pub slot_us: f64,
    /// Energy a tag spends per backscattered response, microjoules.
    /// Zero for purely passive tags (the reader's CW pays for it) — use a
    /// positive value for battery-assisted (semi-passive) tags.
    pub tag_response_uj: f64,
}

impl EnergyModel {
    /// A UHF reader at 1 W ERP with 100 µs slots and 1 µJ semi-passive tag
    /// responses — round numbers for comparative studies.
    #[must_use]
    pub fn semi_passive_defaults() -> Self {
        Self {
            reader_tx_mw: 1_000.0,
            reader_rx_mw: 100.0,
            slot_us: 100.0,
            tag_response_uj: 1.0,
        }
    }

    /// Reader energy for the run, millijoules: TX during the command half of
    /// each slot plus RX during the response half.
    #[must_use]
    pub fn reader_mj(&self, m: &AirMetrics) -> f64 {
        let half_slot_s = self.slot_us / 2.0 / 1e6;
        let slots = m.slots as f64;
        (self.reader_tx_mw * half_slot_s + self.reader_rx_mw * half_slot_s) * slots
    }

    /// Total tag-side energy for the run, millijoules (semi-passive tags).
    #[must_use]
    pub fn tags_mj(&self, m: &AirMetrics) -> f64 {
        m.tag_responses as f64 * self.tag_response_uj / 1_000.0
    }

    /// Mean responses (hence response energy events) per slot — a
    /// model-free congestion/energy indicator.
    #[must_use]
    pub fn responses_per_slot(m: &AirMetrics) -> f64 {
        if m.slots == 0 {
            0.0
        } else {
            m.tag_responses as f64 / m.slots as f64
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::semi_passive_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::SlotOutcome;

    fn metrics(slots: u64, responses: u64) -> AirMetrics {
        let mut m = AirMetrics::default();
        for i in 0..slots {
            let r = if i == 0 { responses } else { 0 };
            m.record_slot(0, r, SlotOutcome::from_detected(r));
        }
        m
    }

    #[test]
    fn reader_energy_scales_with_slots() {
        let model = EnergyModel::semi_passive_defaults();
        let one = model.reader_mj(&metrics(1, 0));
        let ten = model.reader_mj(&metrics(10, 0));
        assert!((ten - 10.0 * one).abs() < 1e-12);
        // 1 slot: (1000 + 100) mW × 50 µs = 0.055 mJ.
        assert!((one - 0.055).abs() < 1e-9);
    }

    #[test]
    fn tag_energy_scales_with_responses() {
        let model = EnergyModel::semi_passive_defaults();
        assert_eq!(model.tags_mj(&metrics(1, 0)), 0.0);
        assert!((model.tags_mj(&metrics(1, 500)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn responses_per_slot_indicator() {
        assert_eq!(EnergyModel::responses_per_slot(&AirMetrics::default()), 0.0);
        let m = metrics(4, 8);
        assert_eq!(EnergyModel::responses_per_slot(&m), 2.0);
    }
}
