//! Gen2 PHY profiles: per-slot-type timing plus an energy ledger.
//!
//! [`TimeModel`](crate::clock::TimeModel) and
//! [`EnergyModel`](crate::energy::EnergyModel) each convert one dimension of
//! [`AirMetrics`]; a [`PhyProfile`] bundles both into a single named set of
//! physical-layer assumptions and produces a [`PhyReport`] — wall-clock
//! milliseconds and a microjoule ledger split into reader TX, reader RX, and
//! tag backscatter — for one protocol execution.
//!
//! The conversion is a *pure fold* over the already-recorded metrics: it
//! reads `AirMetrics` and nothing else, consumes no randomness, and cannot
//! influence slot outcomes or estimates. That invariant is what lets the
//! estimator attach a PHY report to every run with bit-for-bit unchanged
//! estimates (pinned by the `phy_conformance` proptest differential).

use crate::metrics::AirMetrics;

/// A named set of physical-layer assumptions: per-slot-type durations,
/// reader link rate, and reader/tag power figures.
///
/// Unlike [`TimeModel`](crate::clock::TimeModel), collision slots are timed
/// separately from singletons: a Gen2 reader that detects an RN16 preamble
/// collision can abort the reply window early and issue the next QueryRep,
/// so a collision slot is shorter than a cleanly decoded singleton.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhyProfile {
    /// Duration of an idle slot (no-reply timeout after the command), µs.
    pub idle_us: f64,
    /// Duration of a singleton slot (full RN16 backscatter decoded), µs.
    pub singleton_us: f64,
    /// Duration of a collision slot (preamble heard, reply aborted), µs.
    pub collision_us: f64,
    /// Reader transmission time per command bit (link-rate inverse), µs.
    pub us_per_command_bit: f64,
    /// Reader transmit power while sending commands and CW, milliwatts.
    pub reader_tx_mw: f64,
    /// Reader receive power while listening for replies, milliwatts.
    pub reader_rx_mw: f64,
    /// Energy a semi-passive tag spends per backscattered response, µJ.
    pub tag_response_uj: f64,
}

impl PhyProfile {
    /// EPC C1G2-inspired defaults: 40 kbps reader link (25 µs/bit), 300 µs
    /// no-reply timeout, 800 µs for a decoded RN16 reply, 575 µs for a
    /// collision aborted after the preamble; 1 W ERP reader TX, 100 mW RX,
    /// 1 µJ per semi-passive tag response.
    #[must_use]
    pub fn gen2() -> Self {
        Self {
            idle_us: 300.0,
            singleton_us: 800.0,
            collision_us: 575.0,
            us_per_command_bit: 25.0,
            reader_tx_mw: 1_000.0,
            reader_rx_mw: 100.0,
            tag_response_uj: 1.0,
        }
    }

    /// Looks up a profile by name (the CLI/server `--phy` knob). Currently
    /// `"gen2"`; adding a profile means adding a constructor and an arm
    /// here (see DESIGN.md "PHY profile").
    #[must_use]
    pub fn named(name: &str) -> Option<Self> {
        match name {
            "gen2" => Some(Self::gen2()),
            _ => None,
        }
    }

    /// Reader TX air time for the recorded metrics, µs (command bits only;
    /// the CW powering tag replies is charged to the slot windows).
    #[must_use]
    fn tx_us(&self, m: &AirMetrics) -> f64 {
        self.us_per_command_bit * m.command_bits as f64
    }

    /// Reader listen time for the recorded metrics, µs.
    #[must_use]
    fn rx_us(&self, m: &AirMetrics) -> f64 {
        self.idle_us * m.idle as f64
            + self.singleton_us * m.singleton as f64
            + self.collision_us * m.collision as f64
    }

    /// Folds the metrics of one finished run into wall-clock time and the
    /// energy ledger. Pure: reads `AirMetrics` only.
    #[must_use]
    pub fn report(&self, m: &AirMetrics) -> PhyReport {
        let tx_us = self.tx_us(m);
        let rx_us = self.rx_us(m);
        // mW × µs = nJ; divide by 1e3 for µJ.
        let reader_tx_uj = self.reader_tx_mw * tx_us / 1e3;
        let reader_rx_uj = self.reader_rx_mw * rx_us / 1e3;
        let tag_uj = m.tag_responses as f64 * self.tag_response_uj;
        PhyReport {
            wall_ms: (tx_us + rx_us) / 1e3,
            reader_tx_uj,
            reader_rx_uj,
            tag_uj,
            energy_uj: reader_tx_uj + reader_rx_uj + tag_uj,
        }
    }
}

impl Default for PhyProfile {
    fn default() -> Self {
        Self::gen2()
    }
}

/// Physical-layer ledger for one protocol execution under a [`PhyProfile`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhyReport {
    /// Total air time, milliseconds.
    pub wall_ms: f64,
    /// Reader energy spent transmitting command bits, µJ.
    pub reader_tx_uj: f64,
    /// Reader energy spent listening across slot windows, µJ.
    pub reader_rx_uj: f64,
    /// Tag-side backscatter energy (semi-passive tags), µJ.
    pub tag_uj: f64,
    /// Total: reader TX + reader RX + tag, µJ.
    pub energy_uj: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::SlotOutcome;

    fn metrics() -> AirMetrics {
        let mut m = AirMetrics::default();
        m.record_slot(32, 0, SlotOutcome::Idle); // 300 µs RX, 800 µs TX
        m.record_slot(32, 1, SlotOutcome::Singleton); // 800 µs RX
        m.record_slot(32, 5, SlotOutcome::Collision); // 575 µs RX
        m
    }

    #[test]
    fn gen2_ledger_components() {
        let r = PhyProfile::gen2().report(&metrics());
        // TX: 96 bits × 25 µs = 2400 µs at 1000 mW → 2400 µJ.
        assert!((r.reader_tx_uj - 2400.0).abs() < 1e-9);
        // RX: (300 + 800 + 575) µs at 100 mW → 167.5 µJ.
        assert!((r.reader_rx_uj - 167.5).abs() < 1e-9);
        // Tags: 6 responses × 1 µJ.
        assert!((r.tag_uj - 6.0).abs() < 1e-12);
        assert!((r.energy_uj - (2400.0 + 167.5 + 6.0)).abs() < 1e-9);
        // Wall: 2400 + 1675 µs = 4.075 ms.
        assert!((r.wall_ms - 4.075).abs() < 1e-9);
    }

    #[test]
    fn report_is_additive_over_metrics() {
        let p = PhyProfile::gen2();
        let m = metrics();
        let double = m + m;
        let one = p.report(&m);
        let two = p.report(&double);
        assert!((two.wall_ms - 2.0 * one.wall_ms).abs() < 1e-9);
        assert!((two.energy_uj - 2.0 * one.energy_uj).abs() < 1e-9);
    }

    #[test]
    fn named_lookup() {
        assert_eq!(PhyProfile::named("gen2"), Some(PhyProfile::gen2()));
        assert_eq!(PhyProfile::named("gen3"), None);
    }

    #[test]
    fn empty_metrics_cost_nothing() {
        let r = PhyProfile::gen2().report(&AirMetrics::default());
        assert_eq!(r, PhyReport::default());
    }

    #[test]
    fn collisions_cheaper_than_singletons() {
        let p = PhyProfile::gen2();
        assert!(p.collision_us < p.singleton_us);
        assert!(p.idle_us < p.collision_us);
    }
}
