//! Slot outcomes as heard by the reader.

use std::fmt;

/// What the reader hears in one time slot.
///
/// The PET paper's reader only needs to tell idle from busy (§5.1: "The RFID
/// reader is capable of detecting idle slots from singleton slots as well as
/// collision slots"); the USE/UPE baselines additionally distinguish
/// singletons from collisions, so the simulator models all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotOutcome {
    /// No tag responded (or every response was lost).
    Idle,
    /// Exactly one response was detected.
    Singleton,
    /// Two or more responses collided.
    Collision,
}

impl SlotOutcome {
    /// Classifies a slot from the number of responses the reader detected.
    #[must_use]
    pub fn from_detected(count: u64) -> Self {
        match count {
            0 => Self::Idle,
            1 => Self::Singleton,
            _ => Self::Collision,
        }
    }

    /// Whether any response was detected — the only bit PET, FNEB, and LoF
    /// readers use.
    #[must_use]
    pub fn is_busy(self) -> bool {
        !matches!(self, Self::Idle)
    }

    /// Whether the slot was idle.
    #[must_use]
    pub fn is_idle(self) -> bool {
        matches!(self, Self::Idle)
    }
}

impl fmt::Display for SlotOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Idle => "idle",
            Self::Singleton => "singleton",
            Self::Collision => "collision",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_from_counts() {
        assert_eq!(SlotOutcome::from_detected(0), SlotOutcome::Idle);
        assert_eq!(SlotOutcome::from_detected(1), SlotOutcome::Singleton);
        assert_eq!(SlotOutcome::from_detected(2), SlotOutcome::Collision);
        assert_eq!(SlotOutcome::from_detected(u64::MAX), SlotOutcome::Collision);
    }

    #[test]
    fn busy_and_idle_are_complements() {
        for outcome in [
            SlotOutcome::Idle,
            SlotOutcome::Singleton,
            SlotOutcome::Collision,
        ] {
            assert_ne!(outcome.is_busy(), outcome.is_idle());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(SlotOutcome::Idle.to_string(), "idle");
        assert_eq!(SlotOutcome::Singleton.to_string(), "singleton");
        assert_eq!(SlotOutcome::Collision.to_string(), "collision");
    }
}
