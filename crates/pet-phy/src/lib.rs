//! Slotted-MAC radio substrate for the PET RFID-estimation reproduction.
//!
//! The paper's system model (§3, §5.1): time is divided into slots; in each
//! slot the reader talks first (broadcasting a command that also energizes
//! passive tags) and tags respond in the second half of the slot. The reader
//! cannot decode concurrent responses, but it can distinguish an *idle* slot
//! from a *busy* one — and, for protocols that need it, a *singleton*
//! response from a *collision*.
//!
//! This crate provides the pieces every protocol in the workspace shares:
//!
//! - [`SlotOutcome`]: what the reader hears in one slot.
//! - [`channel`]: the physical channel — [`channel::PerfectChannel`] (the
//!   paper's lossless assumption) and [`channel::LossyChannel`] (a
//!   robustness extension with per-responder miss probability and spurious
//!   busy detections).
//! - [`Air`]: one reader's air interface, owning a channel plus
//!   [`AirMetrics`] accounting of slots and command bits — the paper's two
//!   cost metrics (estimating time in slots, §5.1; command overhead in bits,
//!   §4.6.2).
//! - [`TimeModel`]: an EPC Gen2-inspired conversion from slot counts to
//!   wall-clock air time (extension; the paper reports slot counts only).
//! - [`EnergyModel`]: reader/tag energy from the same metrics (extension,
//!   after the paper's energy-aware related work).
//! - [`PhyProfile`]: a named bundle of per-slot-type durations, link rate,
//!   and power figures that folds finished metrics into a [`PhyReport`]
//!   (wall-clock ms plus a reader-TX/reader-RX/tag µJ ledger) — the knob
//!   behind `pet estimate --phy gen2`.
//! - [`command`]/[`crc`]: bit-faithful Gen2-style command frames with CRC-5
//!   protection (extension; the paper-facing accounting stays payload-only).
//!
//! # Example
//!
//! ```
//! use pet_phy::{Air, SlotOutcome};
//! use pet_phy::channel::PerfectChannel;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut air = Air::new(PerfectChannel);
//! // Broadcast a 32-bit command; three tags respond.
//! let outcome = air.slot(3, 32, &mut rng);
//! assert_eq!(outcome, SlotOutcome::Collision);
//! assert_eq!(air.metrics().slots, 1);
//! assert_eq!(air.metrics().command_bits, 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod clock;
pub mod command;
pub mod crc;
pub mod energy;
pub mod metrics;
pub mod profile;
pub mod slot;
pub mod transcript;

pub use channel::Channel;
pub use clock::TimeModel;
pub use energy::EnergyModel;
pub use metrics::AirMetrics;
pub use profile::{PhyProfile, PhyReport};
pub use slot::SlotOutcome;
pub use transcript::{SlotRecord, Transcript};

use rand::Rng;

/// One reader's air interface: a channel plus cost accounting and an
/// optional transcript.
///
/// Protocol code calls [`Air::slot`] once per time slot with the number of
/// tags that chose to respond and the size of the command broadcast at the
/// start of the slot; the channel decides what the reader hears.
#[derive(Debug, Clone)]
pub struct Air<C> {
    channel: C,
    metrics: AirMetrics,
    transcript: Option<Transcript>,
}

impl<C: Channel> Air<C> {
    /// Creates an air interface over the given channel.
    pub fn new(channel: C) -> Self {
        Self {
            channel,
            metrics: AirMetrics::default(),
            transcript: None,
        }
    }

    /// Enables transcript recording, keeping at most `cap` slot records
    /// (older records are dropped first).
    #[must_use]
    pub fn with_transcript(mut self, cap: usize) -> Self {
        self.transcript = Some(Transcript::with_capacity(cap));
        self
    }

    /// Runs one slot: the reader broadcasts `command_bits` bits, then
    /// `responders` tags transmit simultaneously. Returns what the reader
    /// hears after the channel has had its say.
    pub fn slot<R: Rng + ?Sized>(
        &mut self,
        responders: u64,
        command_bits: u32,
        rng: &mut R,
    ) -> SlotOutcome {
        let outcome = self.channel.transmit(responders, rng);
        self.metrics.record_slot(command_bits, responders, outcome);
        if let Some(t) = &mut self.transcript {
            t.push(SlotRecord {
                command_bits,
                responders,
                outcome,
            });
        }
        outcome
    }

    /// Charges a reader broadcast that does not occupy a response slot —
    /// e.g. PET's round-start transmission of the estimating path (and seed),
    /// which the paper accounts as command overhead rather than a slot
    /// (Table 3 counts 5 slots per round; §4.6.2 counts the bits).
    pub fn broadcast(&mut self, bits: u32) {
        self.metrics.command_bits += u64::from(bits);
    }

    /// Accumulated cost metrics.
    pub fn metrics(&self) -> &AirMetrics {
        &self.metrics
    }

    /// Resets the accounting (e.g. between independent experiments) while
    /// keeping the channel.
    pub fn reset_metrics(&mut self) {
        self.metrics = AirMetrics::default();
        if let Some(t) = &mut self.transcript {
            t.clear();
        }
    }

    /// The recorded transcript, if enabled.
    pub fn transcript(&self) -> Option<&Transcript> {
        self.transcript.as_ref()
    }

    /// The underlying channel.
    pub fn channel(&self) -> &C {
        &self.channel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use channel::PerfectChannel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn slot_accounting_accumulates() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut air = Air::new(PerfectChannel);
        assert_eq!(air.slot(0, 5, &mut rng), SlotOutcome::Idle);
        assert_eq!(air.slot(1, 5, &mut rng), SlotOutcome::Singleton);
        assert_eq!(air.slot(7, 32, &mut rng), SlotOutcome::Collision);
        let m = air.metrics();
        assert_eq!(m.slots, 3);
        assert_eq!(m.idle, 1);
        assert_eq!(m.singleton, 1);
        assert_eq!(m.collision, 1);
        assert_eq!(m.command_bits, 42);
    }

    #[test]
    fn reset_clears_metrics_but_keeps_channel() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut air = Air::new(PerfectChannel);
        air.slot(3, 8, &mut rng);
        air.reset_metrics();
        assert_eq!(air.metrics().slots, 0);
        assert_eq!(air.metrics().command_bits, 0);
    }

    #[test]
    fn transcript_records_slots() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut air = Air::new(PerfectChannel).with_transcript(16);
        air.slot(0, 4, &mut rng);
        air.slot(2, 4, &mut rng);
        let t = air.transcript().expect("transcript enabled");
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[0].outcome, SlotOutcome::Idle);
        assert_eq!(t.records()[1].responders, 2);
    }

    #[test]
    fn broadcast_charges_bits_without_slots() {
        let mut air = Air::new(PerfectChannel);
        air.broadcast(32);
        assert_eq!(air.metrics().slots, 0);
        assert_eq!(air.metrics().command_bits, 32);
        assert!(air.metrics().is_consistent());
    }

    #[test]
    fn transcript_absent_by_default() {
        let air = Air::new(PerfectChannel);
        assert!(air.transcript().is_none());
    }
}
