//! Property-based tests for the radio substrate.

use pet_phy::channel::{Channel, ChannelModel, LossyChannel, PerfectChannel};
use pet_phy::command::{CommandFrame, PetCommandCode};
use pet_phy::crc::{bits_msb_first, crc16_ccitt, crc5_epc};
use pet_phy::energy::EnergyModel;
use pet_phy::{Air, AirMetrics, SlotOutcome, TimeModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Metrics stay internally consistent under arbitrary slot sequences,
    /// and addition composes them exactly.
    #[test]
    fn metrics_consistency(
        slots in proptest::collection::vec((0u64..50, 0u32..64), 0..100),
        split in 0usize..100,
    ) {
        let split = split.min(slots.len());
        let mut rng = StdRng::seed_from_u64(1);
        let mut whole = Air::new(PerfectChannel);
        let mut first = Air::new(PerfectChannel);
        let mut second = Air::new(PerfectChannel);
        for (i, &(responders, bits)) in slots.iter().enumerate() {
            whole.slot(responders, bits, &mut rng);
            if i < split {
                first.slot(responders, bits, &mut rng);
            } else {
                second.slot(responders, bits, &mut rng);
            }
        }
        prop_assert!(whole.metrics().is_consistent());
        let combined = *first.metrics() + *second.metrics();
        prop_assert_eq!(combined, *whole.metrics());
        let total: u64 = slots.iter().map(|&(r, _)| r).sum();
        prop_assert_eq!(whole.metrics().tag_responses, total);
    }

    /// The perfect channel is deterministic; the channel-model wrapper
    /// agrees with it.
    #[test]
    fn perfect_channel_determinism(responders in 0u64..1_000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let direct = PerfectChannel.transmit(responders, &mut rng);
        let wrapped = ChannelModel::Perfect.transmit(responders, &mut rng);
        prop_assert_eq!(direct, SlotOutcome::from_detected(responders));
        prop_assert_eq!(wrapped, direct);
    }

    /// A lossy channel can only demote an outcome (collision → singleton →
    /// idle), never invent responders beyond phantom singletons.
    #[test]
    fn lossy_only_demotes(
        responders in 0u64..200,
        miss in 0.0f64..0.99,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ch = LossyChannel::new(miss, 0.0).unwrap();
        let outcome = ch.transmit(responders, &mut rng);
        match responders {
            0 => prop_assert_eq!(outcome, SlotOutcome::Idle),
            1 => prop_assert!(outcome != SlotOutcome::Collision),
            _ => {} // any demotion possible
        }
    }

    /// Air time is additive in the metrics and nonnegative for sane models.
    #[test]
    fn time_model_additivity(
        a_slots in 0u64..1_000,
        b_slots in 0u64..1_000,
        bits in 0u64..10_000,
    ) {
        let model = TimeModel::gen2();
        let mut a = AirMetrics::default();
        let mut b = AirMetrics::default();
        for _ in 0..a_slots { a.record(0, SlotOutcome::Idle); }
        for _ in 0..b_slots { b.record(0, SlotOutcome::Collision); }
        a.command_bits += bits;
        let sum = a + b;
        let t = model.elapsed(&a) + model.elapsed(&b);
        let ts = model.elapsed(&sum);
        prop_assert!((t.as_secs_f64() - ts.as_secs_f64()).abs() < 1e-9);
    }

    /// Energy accounting is linear in responses and slots.
    #[test]
    fn energy_linearity(slots in 1u64..1_000, responses in 0u64..100_000) {
        let model = EnergyModel::semi_passive_defaults();
        let mut m = AirMetrics::default();
        m.record_slot(0, responses, SlotOutcome::from_detected(responses));
        for _ in 1..slots { m.record(0, SlotOutcome::Idle); }
        prop_assert!((model.tags_mj(&m) - responses as f64 * 1e-3).abs() < 1e-9);
        prop_assert!(model.reader_mj(&m) > 0.0);
    }

    /// Every frame the builders emit passes its own CRC, and any single-bit
    /// corruption fails it.
    #[test]
    fn frames_crc_protected(payload_bits in 0u64..(1 << 20), len in 1u32..20) {
        let payload = bits_msb_first(payload_bits & ((1 << len) - 1), len);
        let frame = CommandFrame::new(PetCommandCode::Query, &payload);
        prop_assert!(frame.check());
        for i in 0..frame.len_bits() {
            let mut bits = frame.bits().to_vec();
            bits[i] = !bits[i];
            prop_assert_ne!(crc5_epc(&bits), 0, "flip at {} undetected", i);
        }
    }

    /// CRC-16 detects all single-bit and single-byte corruptions.
    #[test]
    fn crc16_detects_corruption(data in proptest::collection::vec(any::<u8>(), 1..64), at in 0usize..64, flip in 1u8..=255) {
        let at = at % data.len();
        let base = crc16_ccitt(&data);
        let mut corrupted = data.clone();
        corrupted[at] ^= flip;
        prop_assert_ne!(crc16_ccitt(&corrupted), base);
    }
}
