//! Missing-tag (loss/theft) detection by estimation.
//!
//! The classic "how to monitor for missing RFID tags" problem (paper
//! refs \[30\], \[37\]) solved the estimation way: with book inventory `n₀` and
//! a PET run of `m` rounds, the mean responsive-prefix statistic `L̄` is
//! asymptotically `N(E[L | n], σ(h)/√m)`, so "are tags missing?" is a
//! one-sided z-test of `H₀: n = n₀` against `H₁: n < n₀`. Both error rates
//! are controlled: the false-alarm probability is the chosen significance
//! level, and the per-check power against a given missing fraction is
//! computable in closed form (and verified empirically in the tests).

use pet_core::config::PetConfig;
use pet_core::oracle::CodeRoster;
use pet_core::session::PetSession;
use pet_phy::channel::PerfectChannel;
use pet_phy::Air;
use pet_stats::erf::normal_cdf;
use pet_stats::gray::{GrayDistribution, SIGMA_H};
use pet_tags::population::TagPopulation;
use rand::Rng;
use std::fmt;

/// Error constructing a [`MissingTagMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorError {
    /// The expected inventory must be positive.
    EmptyInventory,
    /// The false-alarm rate must lie in (0, 0.5].
    BadFalseAlarmRate,
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyInventory => write!(f, "expected inventory must be positive"),
            Self::BadFalseAlarmRate => {
                write!(f, "false-alarm rate must lie in (0, 0.5]")
            }
        }
    }
}

impl std::error::Error for MonitorError {}

/// The outcome of one inventory check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorVerdict {
    /// The raw cardinality estimate.
    pub estimate: f64,
    /// Estimated missing fraction `1 − n̂/n₀` (can be negative by noise).
    pub missing_fraction: f64,
    /// One-sided p-value of the observation under "nothing is missing".
    pub p_value: f64,
    /// Whether the deficit is statistically significant.
    pub alarm: bool,
}

/// A calibrated missing-tag detector.
#[derive(Debug, Clone)]
pub struct MissingTagMonitor {
    expected: u64,
    false_alarm_rate: f64,
    config: PetConfig,
    /// Exact `E[L]` under the null hypothesis (full inventory).
    null_mean_prefix: f64,
}

impl MissingTagMonitor {
    /// Creates a monitor for a book inventory of `expected` tags that
    /// alarms with at most `false_alarm_rate` probability when nothing is
    /// missing.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty inventory or a rate outside (0, 0.5].
    pub fn new(
        expected: u64,
        false_alarm_rate: f64,
        config: PetConfig,
    ) -> Result<Self, MonitorError> {
        if expected == 0 {
            return Err(MonitorError::EmptyInventory);
        }
        if !(false_alarm_rate > 0.0 && false_alarm_rate <= 0.5) {
            return Err(MonitorError::BadFalseAlarmRate);
        }
        let null_mean_prefix = GrayDistribution::new(expected, config.height()).mean_prefix();
        Ok(Self {
            expected,
            false_alarm_rate,
            config,
            null_mean_prefix,
        })
    }

    /// The book inventory.
    #[must_use]
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Evaluates an observed mean prefix length from `rounds` rounds
    /// without running any radio — the decision core, also used by tests.
    #[must_use]
    pub fn judge(&self, mean_prefix: f64, rounds: u32) -> MonitorVerdict {
        let se = SIGMA_H / f64::from(rounds).sqrt();
        // Fewer tags ⇒ shorter responsive prefixes ⇒ small L̄ is evidence of
        // missing tags: one-sided lower-tail test.
        let z = (mean_prefix - self.null_mean_prefix) / se;
        let p_value = normal_cdf(z);
        let estimate = pet_stats::gray::estimate_from_mean_prefix(mean_prefix);
        MonitorVerdict {
            estimate,
            missing_fraction: 1.0 - estimate / self.expected as f64,
            p_value,
            alarm: p_value < self.false_alarm_rate,
        }
    }

    /// Runs a full PET estimation over the population and judges it.
    pub fn check<R: Rng + ?Sized>(
        &self,
        population: &TagPopulation,
        rng: &mut R,
    ) -> MonitorVerdict {
        let session = PetSession::new(self.config);
        let keys: Vec<u64> = population.keys().collect();
        let mut oracle = CodeRoster::new(&keys, &self.config, session.family());
        let mut air = Air::new(PerfectChannel);
        let report = session.run(&mut oracle, &mut air, rng);
        self.judge(report.mean_prefix_len, report.rounds)
    }

    /// Smallest missing fraction detectable with probability ≥ `power` at
    /// this monitor's round budget — the closed-form power analysis.
    ///
    /// # Panics
    ///
    /// Panics if `power` is not in (0, 1).
    #[must_use]
    pub fn detectable_fraction(&self, power: f64) -> f64 {
        assert!(power > 0.0 && power < 1.0, "power must be in (0, 1)");
        let m = f64::from(self.config.rounds());
        let se = SIGMA_H / m.sqrt();
        // Alarm when z < z_α; detection of fraction θ needs the mean shift
        // |log₂(1−θ)| to exceed (|z_α| + z_power)·se, with the one-sided
        // quantiles Φ⁻¹(α) and Φ⁻¹(power).
        let z_alpha =
            std::f64::consts::SQRT_2 * pet_stats::erf::erf_inv(2.0 * self.false_alarm_rate - 1.0);
        let z_power = std::f64::consts::SQRT_2 * pet_stats::erf::erf_inv(2.0 * power - 1.0);
        let shift = (z_alpha.abs() + z_power) * se;
        1.0 - 2f64.powf(-shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pet_stats::accuracy::Accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn monitor(expected: u64, alpha: f64) -> MissingTagMonitor {
        let config = PetConfig::builder()
            .accuracy(Accuracy::new(0.05, 0.05).unwrap())
            .build()
            .unwrap();
        MissingTagMonitor::new(expected, alpha, config).unwrap()
    }

    #[test]
    fn construction_validation() {
        let config = PetConfig::paper_default();
        assert_eq!(
            MissingTagMonitor::new(0, 0.01, config).unwrap_err(),
            MonitorError::EmptyInventory
        );
        assert_eq!(
            MissingTagMonitor::new(10, 0.0, config).unwrap_err(),
            MonitorError::BadFalseAlarmRate
        );
        assert_eq!(
            MissingTagMonitor::new(10, 0.9, config).unwrap_err(),
            MonitorError::BadFalseAlarmRate
        );
    }

    /// False-alarm calibration: with the full inventory present, the alarm
    /// rate must match the configured significance level.
    #[test]
    fn false_alarm_rate_is_calibrated() {
        let trials = 200;
        let mut alarms = 0;
        for t in 0..trials {
            let config = PetConfig::builder()
                .accuracy(Accuracy::new(0.05, 0.05).unwrap())
                .manufacture_seed(t)
                .build()
                .unwrap();
            let m = MissingTagMonitor::new(20_000, 0.05, config).unwrap();
            let mut rng = StdRng::seed_from_u64(t);
            if m.check(&TagPopulation::sequential(20_000), &mut rng).alarm {
                alarms += 1;
            }
        }
        let rate = alarms as f64 / trials as f64;
        // 5% nominal; binomial 3σ slack at 200 trials is ±4.6%.
        assert!(rate < 0.12, "false alarm rate {rate}");
    }

    /// Power: a 15% deficit must be caught essentially always at the
    /// (5%, 5%) budget (m ≈ 2,600 rounds ⇒ se ≈ 0.037 bits; the shift
    /// log₂(0.85) ≈ −0.234 is >6 standard errors).
    #[test]
    fn large_deficit_always_alarms() {
        let trials = 50;
        let mut caught = 0;
        for t in 0..trials {
            let config = PetConfig::builder()
                .accuracy(Accuracy::new(0.05, 0.05).unwrap())
                .manufacture_seed(1_000 + t)
                .build()
                .unwrap();
            let m = MissingTagMonitor::new(20_000, 0.05, config).unwrap();
            let mut rng = StdRng::seed_from_u64(1_000 + t);
            let verdict = m.check(&TagPopulation::sequential(17_000), &mut rng);
            if verdict.alarm {
                caught += 1;
            }
        }
        assert!(
            caught >= trials - 2,
            "missed deficits: caught {caught}/{trials}"
        );
    }

    /// The closed-form power analysis brackets reality: the detectable
    /// fraction at 95% power is smaller than 15% (which the empirical test
    /// above catches ~always) and larger than 0.1% (undetectable).
    #[test]
    fn detectable_fraction_is_sane() {
        let m = monitor(20_000, 0.05);
        let theta = m.detectable_fraction(0.95);
        assert!(theta > 0.001 && theta < 0.15, "detectable fraction {theta}");
        // More power demanded → larger detectable fraction.
        assert!(m.detectable_fraction(0.99) > m.detectable_fraction(0.50));
    }

    #[test]
    fn judge_is_monotone_in_observed_prefix() {
        let m = monitor(10_000, 0.05);
        let rounds = 1_000;
        let null_mean = GrayDistribution::new(10_000, 32).mean_prefix();
        let healthy = m.judge(null_mean, rounds);
        let short = m.judge(null_mean - 0.5, rounds);
        assert!(healthy.p_value > short.p_value);
        assert!(!healthy.alarm);
        assert!(short.alarm);
        assert!(short.missing_fraction > healthy.missing_fraction);
    }

    #[test]
    #[should_panic(expected = "power must be in (0, 1)")]
    fn bad_power_rejected() {
        let _ = monitor(100, 0.05).detectable_fraction(1.0);
    }
}
