//! Capacity guarding: "is the room over its limit?" with controlled error.
//!
//! Two one-sided tests around an occupancy limit. When neither side is
//! significant the guard says so (`Uncertain`) instead of guessing — the
//! honest behaviour for populations near the limit, where no estimator of
//! finite budget can decide reliably.

use pet_core::config::PetConfig;
use pet_core::oracle::CodeRoster;
use pet_core::session::PetSession;
use pet_phy::channel::PerfectChannel;
use pet_phy::Air;
use pet_stats::erf::normal_cdf;
use pet_stats::gray::{GrayDistribution, SIGMA_H};
use pet_tags::population::TagPopulation;
use rand::Rng;

/// The guard's decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityVerdict {
    /// Confidently under the limit.
    Under,
    /// Confidently over the limit.
    Over,
    /// Too close to the limit for the configured confidence.
    Uncertain,
}

/// A calibrated occupancy-limit guard.
#[derive(Debug, Clone)]
pub struct CapacityGuard {
    limit: u64,
    significance: f64,
    config: PetConfig,
    limit_mean_prefix: f64,
}

impl CapacityGuard {
    /// Creates a guard for `limit` tags deciding at significance level
    /// `significance` per side.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero or `significance` is outside (0, 0.5].
    #[must_use]
    pub fn new(limit: u64, significance: f64, config: PetConfig) -> Self {
        assert!(limit > 0, "limit must be positive");
        assert!(
            significance > 0.0 && significance <= 0.5,
            "significance must lie in (0, 0.5]"
        );
        let limit_mean_prefix = GrayDistribution::new(limit, config.height()).mean_prefix();
        Self {
            limit,
            significance,
            config,
            limit_mean_prefix,
        }
    }

    /// The occupancy limit.
    #[must_use]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Decision core on an observed mean prefix (exposed for tests).
    #[must_use]
    pub fn judge(&self, mean_prefix: f64, rounds: u32) -> CapacityVerdict {
        let se = SIGMA_H / f64::from(rounds).sqrt();
        let z = (mean_prefix - self.limit_mean_prefix) / se;
        // Upper tail: significantly above the limit's statistic.
        if 1.0 - normal_cdf(z) < self.significance {
            CapacityVerdict::Over
        } else if normal_cdf(z) < self.significance {
            CapacityVerdict::Under
        } else {
            CapacityVerdict::Uncertain
        }
    }

    /// Runs an estimation over the population and decides.
    pub fn check<R: Rng + ?Sized>(
        &self,
        population: &TagPopulation,
        rng: &mut R,
    ) -> CapacityVerdict {
        let session = PetSession::new(self.config);
        let keys: Vec<u64> = population.keys().collect();
        let mut oracle = CodeRoster::new(&keys, &self.config, session.family());
        let mut air = Air::new(PerfectChannel);
        let report = session.run(&mut oracle, &mut air, rng);
        self.judge(report.mean_prefix_len, report.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pet_stats::accuracy::Accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(seed: u64) -> PetConfig {
        PetConfig::builder()
            .accuracy(Accuracy::new(0.05, 0.05).unwrap())
            .manufacture_seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn clear_cases_decide_correctly() {
        let mut under = 0;
        let mut over = 0;
        let trials = 30;
        for t in 0..trials {
            let guard = CapacityGuard::new(10_000, 0.05, config(t));
            let mut rng = StdRng::seed_from_u64(t);
            // 20% under the limit.
            if guard.check(&TagPopulation::sequential(8_000), &mut rng) == CapacityVerdict::Under {
                under += 1;
            }
            // 20% over the limit.
            let mut rng = StdRng::seed_from_u64(t ^ 0xFF);
            if guard.check(&TagPopulation::sequential(12_000), &mut rng) == CapacityVerdict::Over {
                over += 1;
            }
        }
        assert!(under >= trials - 1, "under detected {under}/{trials}");
        assert!(over >= trials - 1, "over detected {over}/{trials}");
    }

    /// At the limit itself the guard must mostly abstain (each side fires
    /// with probability ≈ its significance level).
    #[test]
    fn at_the_limit_mostly_uncertain() {
        let trials = 60;
        let mut uncertain = 0;
        for t in 0..trials {
            let guard = CapacityGuard::new(10_000, 0.05, config(100 + t));
            let mut rng = StdRng::seed_from_u64(100 + t);
            if guard.check(&TagPopulation::sequential(10_000), &mut rng)
                == CapacityVerdict::Uncertain
            {
                uncertain += 1;
            }
        }
        let rate = uncertain as f64 / trials as f64;
        assert!(rate > 0.75, "uncertain rate {rate} (expected ≈ 0.90)");
    }

    #[test]
    fn judge_ordering() {
        let guard = CapacityGuard::new(10_000, 0.05, config(0));
        let at_limit = GrayDistribution::new(10_000, 32).mean_prefix();
        assert_eq!(guard.judge(at_limit, 1_000), CapacityVerdict::Uncertain);
        assert_eq!(guard.judge(at_limit + 1.0, 1_000), CapacityVerdict::Over);
        assert_eq!(guard.judge(at_limit - 1.0, 1_000), CapacityVerdict::Under);
    }

    #[test]
    #[should_panic(expected = "limit must be positive")]
    fn zero_limit_rejected() {
        let _ = CapacityGuard::new(0, 0.05, config(0));
    }

    #[test]
    #[should_panic(expected = "significance must lie in (0, 0.5]")]
    fn bad_significance_rejected() {
        let _ = CapacityGuard::new(10, 0.7, config(0));
    }
}
