//! Population trend tracking across repeated anonymous estimates.
//!
//! A stream of timestamped PET estimates (badge headcounts through a day,
//! pallets through a week) with per-point confidence intervals and a
//! least-squares drift test: "is the population growing or shrinking, or is
//! the movement within estimation noise?". Works in the log domain, where
//! the estimator's error is additive and homoscedastic
//! (`log₂ n̂ = L̄ − log₂ φ` with deviation `σ(h)/√m`).

use pet_stats::erf::two_sided_quantile;
use pet_stats::gray::{PHI, SIGMA_H};

/// One tracked estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendPoint {
    /// Observation time (any monotone unit: seconds, frame index, …).
    pub time: f64,
    /// The cardinality estimate.
    pub estimate: f64,
    /// Rounds behind the estimate (sets its confidence interval).
    pub rounds: u32,
}

impl TrendPoint {
    /// Two-sided confidence interval of this point at error probability
    /// `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is outside (0, 1) or the estimate is not positive.
    #[must_use]
    pub fn confidence_interval(&self, delta: f64) -> (f64, f64) {
        assert!(self.estimate > 0.0, "interval undefined for zero estimates");
        let c = two_sided_quantile(delta);
        let half = c * SIGMA_H / f64::from(self.rounds).sqrt();
        (
            self.estimate * 2f64.powf(-half),
            self.estimate * 2f64.powf(half),
        )
    }
}

/// Direction verdict of the drift test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drift {
    /// Significant growth.
    Growing,
    /// Significant decline.
    Shrinking,
    /// Movement within estimation noise.
    Flat,
}

/// A stream of estimates with drift detection.
#[derive(Debug, Clone, Default)]
pub struct TrendTracker {
    points: Vec<TrendPoint>,
}

impl TrendTracker {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one estimate.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not strictly after the previous point, the
    /// estimate is not positive/finite, or `rounds` is zero.
    pub fn push(&mut self, point: TrendPoint) {
        assert!(
            point.estimate.is_finite() && point.estimate > 0.0,
            "estimate must be positive and finite"
        );
        assert!(point.rounds > 0, "rounds must be positive");
        if let Some(last) = self.points.last() {
            assert!(point.time > last.time, "time must be strictly increasing");
        }
        self.points.push(point);
    }

    /// The tracked points.
    #[must_use]
    pub fn points(&self) -> &[TrendPoint] {
        &self.points
    }

    /// Least-squares slope of `log₂ n̂` over time (bits per time unit), with
    /// its standard error from the known per-point deviations. `None` with
    /// fewer than two points or zero time spread.
    #[must_use]
    pub fn log2_slope(&self) -> Option<(f64, f64)> {
        if self.points.len() < 2 {
            return None;
        }
        // Weighted least squares with weights 1/var_i, var_i = σ²/mᵢ.
        let w: Vec<f64> = self
            .points
            .iter()
            .map(|p| f64::from(p.rounds) / (SIGMA_H * SIGMA_H))
            .collect();
        let y: Vec<f64> = self
            .points
            .iter()
            .map(|p| (PHI * p.estimate).log2())
            .collect();
        let sw: f64 = w.iter().sum();
        let t_bar = self
            .points
            .iter()
            .zip(&w)
            .map(|(p, wi)| wi * p.time)
            .sum::<f64>()
            / sw;
        let sxx: f64 = self
            .points
            .iter()
            .zip(&w)
            .map(|(p, wi)| wi * (p.time - t_bar).powi(2))
            .sum();
        if sxx <= 0.0 {
            return None;
        }
        let sxy: f64 = self
            .points
            .iter()
            .zip(&w)
            .zip(&y)
            .map(|((p, wi), yi)| wi * (p.time - t_bar) * yi)
            .sum();
        let slope = sxy / sxx;
        let se = (1.0 / sxx).sqrt();
        Some((slope, se))
    }

    /// Drift verdict at error probability `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is outside (0, 1).
    #[must_use]
    pub fn drift(&self, delta: f64) -> Drift {
        let Some((slope, se)) = self.log2_slope() else {
            return Drift::Flat;
        };
        let c = two_sided_quantile(delta);
        if slope > c * se {
            Drift::Growing
        } else if slope < -c * se {
            Drift::Shrinking
        } else {
            Drift::Flat
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(time: f64, estimate: f64, rounds: u32) -> TrendPoint {
        TrendPoint {
            time,
            estimate,
            rounds,
        }
    }

    #[test]
    fn confidence_interval_brackets_the_estimate() {
        let p = point(0.0, 10_000.0, 1_000);
        let (lo, hi) = p.confidence_interval(0.05);
        assert!(lo < 10_000.0 && 10_000.0 < hi);
        // m = 1000: half-width ≈ 1.96·1.87/31.6 ≈ 0.116 bits ≈ ±8.4%.
        assert!(lo > 9_000.0 && hi < 11_000.0, "({lo}, {hi})");
        // Fewer rounds → wider interval.
        let wide = point(0.0, 10_000.0, 10).confidence_interval(0.05);
        assert!(wide.0 < lo && wide.1 > hi);
    }

    #[test]
    fn steady_population_reads_flat() {
        let mut t = TrendTracker::new();
        for i in 0..8 {
            // Small jitter well inside the noise floor at m = 64.
            let jitter = 1.0 + 0.01 * f64::from(i % 3) - 0.01;
            t.push(point(f64::from(i), 5_000.0 * jitter, 64));
        }
        assert_eq!(t.drift(0.05), Drift::Flat);
    }

    #[test]
    fn doubling_population_reads_growing() {
        let mut t = TrendTracker::new();
        for i in 0..6 {
            t.push(point(f64::from(i), 1_000.0 * 2f64.powi(i), 64));
        }
        assert_eq!(t.drift(0.01), Drift::Growing);
        let (slope, _) = t.log2_slope().unwrap();
        assert!((slope - 1.0).abs() < 0.05, "slope {slope} bits/step");
    }

    #[test]
    fn halving_population_reads_shrinking() {
        let mut t = TrendTracker::new();
        for i in 0..6 {
            t.push(point(f64::from(i), 64_000.0 / 2f64.powi(i), 64));
        }
        assert_eq!(t.drift(0.01), Drift::Shrinking);
    }

    #[test]
    fn too_few_points_is_flat() {
        let mut t = TrendTracker::new();
        assert_eq!(t.drift(0.05), Drift::Flat);
        t.push(point(0.0, 100.0, 8));
        assert_eq!(t.drift(0.05), Drift::Flat);
        assert!(t.log2_slope().is_none());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_time_rejected() {
        let mut t = TrendTracker::new();
        t.push(point(1.0, 100.0, 8));
        t.push(point(1.0, 100.0, 8));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_estimate_rejected() {
        let mut t = TrendTracker::new();
        t.push(point(0.0, 0.0, 8));
    }
}
