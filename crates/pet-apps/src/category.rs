//! Per-category estimation via Gen2 *Select* scoping.
//!
//! EPC C1G2 readers can broadcast a Select command that asserts only tags
//! whose EPC matches a field filter; every subsequent inventory (or PET
//! estimation) round then runs over that subpopulation exclusively. This
//! lets an operator ask "how many pallets *per supplier*?" — one anonymous
//! PET estimate per EPC manager number — without ever reading an ID. The
//! Select broadcast itself is charged as command overhead (a Gen2 Select is
//! on the order of 45 bits plus the mask).

use pet_core::config::PetConfig;
use pet_core::oracle::CodeRoster;
use pet_core::session::{EstimateReport, PetSession};
use pet_phy::channel::PerfectChannel;
use pet_phy::Air;
use pet_tags::population::TagPopulation;
use pet_tags::tag::Tag;
use rand::Rng;
use std::collections::BTreeMap;

/// Gen2 Select command overhead: command code + target/action + EBV pointer
/// + length + a 28-bit manager mask + CRC-16 ≈ 45 + 28 bits.
const SELECT_BITS: u32 = 73;

/// One category's estimate.
#[derive(Debug, Clone)]
pub struct CategoryReport {
    /// The category key (e.g. the EPC manager number).
    pub category: u32,
    /// True member count in the scoped population (simulation ground truth,
    /// exposed for evaluation; a real deployment would not know it).
    pub true_count: usize,
    /// The estimation report for this category.
    pub report: EstimateReport,
}

/// Estimates every category of a population, scoping each estimation run
/// with a Select on the key returned by `key_of`.
pub fn estimate_by<K, R>(
    population: &TagPopulation,
    config: &PetConfig,
    rounds: u32,
    key_of: K,
    rng: &mut R,
) -> Vec<CategoryReport>
where
    K: Fn(&Tag) -> u32,
    R: Rng + ?Sized,
{
    let mut groups: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for tag in population {
        groups.entry(key_of(tag)).or_default().push(tag.key());
    }
    let session = PetSession::new(*config);
    groups
        .into_iter()
        .map(|(category, keys)| {
            let mut oracle = CodeRoster::new(&keys, config, session.family());
            let mut air = Air::new(PerfectChannel);
            // The Select broadcast that scopes everything that follows.
            air.broadcast(SELECT_BITS);
            let report = session.run_rounds(rounds, &mut oracle, &mut air, rng);
            CategoryReport {
                category,
                true_count: keys.len(),
                report,
            }
        })
        .collect()
}

/// Convenience: per-EPC-manager estimates (the "per supplier" question).
pub fn estimate_by_manager<R: Rng + ?Sized>(
    population: &TagPopulation,
    config: &PetConfig,
    rounds: u32,
    rng: &mut R,
) -> Vec<CategoryReport> {
    estimate_by(population, config, rounds, |t| t.epc().manager(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pet_stats::accuracy::Accuracy;
    use pet_tags::epc::Epc96;
    use pet_tags::tag::TagKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mixed_population(per_supplier: &[(u32, usize)]) -> TagPopulation {
        let mut tags = Vec::new();
        for &(manager, count) in per_supplier {
            for serial in 0..count as u64 {
                tags.push(Tag::new(
                    Epc96::new(0x30, manager, 7, serial).unwrap(),
                    TagKind::Passive,
                ));
            }
        }
        TagPopulation::from_tags(tags)
    }

    fn config() -> PetConfig {
        PetConfig::builder()
            .accuracy(Accuracy::new(0.2, 0.2).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn per_supplier_estimates_are_accurate() {
        let pop = mixed_population(&[(100, 3_000), (200, 8_000), (300, 500)]);
        let mut rng = StdRng::seed_from_u64(1);
        let reports = estimate_by_manager(&pop, &config(), 512, &mut rng);
        assert_eq!(reports.len(), 3);
        for r in &reports {
            let rel = (r.report.estimate - r.true_count as f64).abs() / r.true_count as f64;
            assert!(
                rel < 0.25,
                "supplier {}: estimate {} vs {}",
                r.category,
                r.report.estimate,
                r.true_count
            );
        }
        // Sum of category estimates tracks the whole population.
        let total: f64 = reports.iter().map(|r| r.report.estimate).sum();
        assert!((total - 11_500.0).abs() / 11_500.0 < 0.2, "total {total}");
    }

    #[test]
    fn select_overhead_is_charged() {
        let pop = mixed_population(&[(1, 100)]);
        let mut rng = StdRng::seed_from_u64(2);
        let reports = estimate_by_manager(&pop, &config(), 16, &mut rng);
        let m = &reports[0].report.metrics;
        // 16 rounds × (32-bit path + 5 query slots × 5 bits) + the Select.
        assert_eq!(m.command_bits, u64::from(SELECT_BITS) + 16 * (32 + 25));
    }

    #[test]
    fn categories_are_deterministically_ordered() {
        let pop = mixed_population(&[(30, 10), (10, 10), (20, 10)]);
        let mut rng = StdRng::seed_from_u64(3);
        let reports = estimate_by_manager(&pop, &config(), 8, &mut rng);
        let cats: Vec<u32> = reports.iter().map(|r| r.category).collect();
        assert_eq!(cats, vec![10, 20, 30]);
    }

    #[test]
    fn custom_keys_group_by_class() {
        let mut tags = Vec::new();
        for serial in 0..40u64 {
            tags.push(Tag::new(
                Epc96::new(0x30, 1, (serial % 2) as u32, serial).unwrap(),
                TagKind::Passive,
            ));
        }
        let pop = TagPopulation::from_tags(tags);
        let mut rng = StdRng::seed_from_u64(4);
        let reports = estimate_by(&pop, &config(), 8, |t| t.epc().class(), &mut rng);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].true_count, 20);
        assert_eq!(reports[1].true_count, 20);
    }

    #[test]
    fn empty_population_yields_no_categories() {
        let mut rng = StdRng::seed_from_u64(5);
        let reports = estimate_by_manager(&TagPopulation::new(), &config(), 8, &mut rng);
        assert!(reports.is_empty());
    }
}
