//! Application layer over PET estimation.
//!
//! The paper's introduction motivates estimation with inventory control,
//! cargo verification, and attendance counting (§1: "counting the number of
//! conference or exposition attendees with RFID badges, verifying the
//! amount of products with RFID labels in cargo shipping"). This crate
//! turns those scenarios into *calibrated decision procedures* built on the
//! estimator's known sampling law (the mean gray-node statistic is
//! asymptotically normal with deviation `σ(h)/√m`, §4.2):
//!
//! - [`monitor`]: missing-tag (loss/theft) detection — a one-sided test of
//!   "is the population significantly below the book inventory?".
//! - [`guard`]: capacity guarding — two one-sided tests around an occupancy
//!   limit, with an explicit *uncertain* verdict in between.
//! - [`trend`]: population trend tracking across repeated estimates, with
//!   per-point confidence intervals and a least-squares drift test.
//! - [`category`]: per-category (e.g. per-supplier) estimates via Gen2
//!   Select scoping.
//!
//! # Example
//!
//! ```
//! use pet_apps::monitor::MissingTagMonitor;
//! use pet_core::config::PetConfig;
//! use pet_stats::accuracy::Accuracy;
//! use pet_tags::population::TagPopulation;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let config = PetConfig::builder()
//!     .accuracy(Accuracy::new(0.10, 0.05).unwrap())
//!     .build()
//!     .unwrap();
//! // Book inventory says 10,000 pallets; alarm if ≥10% are missing.
//! let monitor = MissingTagMonitor::new(10_000, 0.01, config).unwrap();
//! let mut rng = StdRng::seed_from_u64(7);
//! let verdict = monitor.check(&TagPopulation::sequential(10_000), &mut rng);
//! assert!(!verdict.alarm, "full shelf must not alarm: {verdict:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod guard;
pub mod monitor;
pub mod trend;

pub use category::{estimate_by, estimate_by_manager, CategoryReport};
pub use guard::{CapacityGuard, CapacityVerdict};
pub use monitor::{MissingTagMonitor, MonitorVerdict};
pub use trend::{TrendPoint, TrendTracker};
