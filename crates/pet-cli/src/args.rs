//! Minimal argument parsing for the `pet` binary (no external parser — the
//! workspace's dependency set stays at rand/proptest/criterion).
//!
//! Grammar: `pet <command> [--flag value]... [--switch]...`.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a command word plus flag map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional word).
    pub command: String,
    flags: BTreeMap<String, String>,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns an error when no command is given, a flag is malformed, or a
    /// value is missing.
    pub fn parse<I, S>(argv: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut it = argv.into_iter().map(Into::into).peekable();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing command".into()))?;
        if command.starts_with('-') {
            return Err(ArgError(format!(
                "expected a command, got flag {command:?}"
            )));
        }
        let mut flags = BTreeMap::new();
        while let Some(token) = it.next() {
            let Some(name) = token.strip_prefix("--") else {
                return Err(ArgError(format!(
                    "unexpected positional argument {token:?}"
                )));
            };
            if name.is_empty() {
                return Err(ArgError("empty flag name".into()));
            }
            // A flag is boolean when followed by another flag or nothing.
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().expect("peeked"),
                _ => "true".to_string(),
            };
            if flags.insert(name.to_string(), value).is_some() {
                return Err(ArgError(format!("duplicate flag --{name}")));
            }
        }
        Ok(Self { command, flags })
    }

    /// A string flag value.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A parsed numeric/boolean flag, defaulting when absent.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {raw:?}"))),
        }
    }

    /// A required flag.
    ///
    /// # Errors
    ///
    /// Returns an error when the flag is absent or does not parse.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let raw = self
            .flags
            .get(name)
            .ok_or_else(|| ArgError(format!("missing required flag --{name}")))?;
        raw.parse()
            .map_err(|_| ArgError(format!("--{name}: cannot parse {raw:?}")))
    }

    /// Whether a boolean switch is set.
    #[must_use]
    pub fn switch(&self, name: &str) -> bool {
        matches!(self.get(name), Some("true" | "1" | "yes"))
    }

    /// Rejects flags outside the allowed set (typo protection).
    ///
    /// # Errors
    ///
    /// Returns an error naming the first unknown flag.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for name in self.flags.keys() {
            if !allowed.contains(&name.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{name} for command {:?} (allowed: {})",
                    self.command,
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().copied())
    }

    #[test]
    fn command_and_flags() {
        let a = parse(&[
            "estimate",
            "--tags",
            "5000",
            "--epsilon",
            "0.1",
            "--adaptive",
        ])
        .unwrap();
        assert_eq!(a.command, "estimate");
        assert_eq!(a.require::<u64>("tags").unwrap(), 5000);
        assert_eq!(a.get_or("epsilon", 0.05).unwrap(), 0.1);
        assert!(a.switch("adaptive"));
        assert!(!a.switch("linear"));
        assert_eq!(a.get_or("delta", 0.01).unwrap(), 0.01);
    }

    #[test]
    fn errors_are_user_facing() {
        assert!(parse(&[]).unwrap_err().0.contains("missing command"));
        assert!(parse(&["--tags"])
            .unwrap_err()
            .0
            .contains("expected a command"));
        assert!(parse(&["run", "loose"])
            .unwrap_err()
            .0
            .contains("positional"));
        assert!(parse(&["run", "--x", "1", "--x", "2"])
            .unwrap_err()
            .0
            .contains("duplicate"));
        let a = parse(&["run", "--tags", "many"]).unwrap();
        assert!(a
            .require::<u64>("tags")
            .unwrap_err()
            .0
            .contains("cannot parse"));
        assert!(a
            .require::<f64>("absent")
            .unwrap_err()
            .0
            .contains("missing required"));
    }

    #[test]
    fn switch_values() {
        let a = parse(&["run", "--flag", "--next", "7"]).unwrap();
        assert!(a.switch("flag"));
        assert_eq!(a.require::<u32>("next").unwrap(), 7);
    }

    #[test]
    fn unknown_flags_rejected() {
        let a = parse(&["run", "--good", "1", "--bad", "2"]).unwrap();
        assert!(a.expect_only(&["good"]).is_err());
        assert!(a.expect_only(&["good", "bad"]).is_ok());
    }

    #[test]
    fn negative_numbers_parse_as_values() {
        let a = parse(&["run", "--shift", "-3"]).unwrap();
        assert_eq!(a.require::<i32>("shift").unwrap(), -3);
    }
}
