//! `pet serve` and `pet loadgen` — the service surface of the CLI.
//!
//! `serve` runs the pet-server daemon in the foreground until a client
//! sends the `shutdown` verb, then prints the final RED metrics. `loadgen`
//! is the matching closed-loop load generator: N threads, one connection
//! each, every reply validated and folded into an order-independent digest
//! so two runs against a deterministic server can be compared bit-for-bit
//! (`--verify-deterministic`).

use crate::args::{ArgError, Args};
use pet_server::json::Json;
use pet_server::{serve, Client, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// `pet serve [--addr 127.0.0.1:7878] [--workers 4] [--queue 64]
/// [--deterministic] [--deadline-ms D] [--addr-file path]`
pub fn cmd_serve(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "addr",
        "workers",
        "queue",
        "deterministic",
        "deadline-ms",
        "addr-file",
        "telemetry",
    ])?;
    let config = server_config(args, "127.0.0.1:7878")?;
    let handle = serve(&config).map_err(|e| ArgError(format!("bind {}: {e}", config.addr)))?;
    let addr = handle.addr();
    if let Some(path) = args.get("addr-file") {
        // Lets scripts (and the CI smoke gate) discover an ephemeral port.
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| ArgError(format!("--addr-file {path}: {e}")))?;
    }
    println!("pet-server listening on {addr}");
    println!(
        "  workers {}, queue capacity {}, deterministic {}",
        config.workers, config.queue_capacity, config.deterministic
    );
    println!("  send {{\"id\":\"bye\",\"verb\":\"shutdown\"}} to stop");
    let summary = handle.join();
    println!("\nfinal metrics:\n{}", summary.render());
    Ok(())
}

/// `pet loadgen (--addr HOST:PORT | --local) [--requests 10000]
/// [--threads 8] [--tags 200] [--rounds 4] [--workers 4] [--queue 64]
/// [--verify-deterministic] [--bench-json results/BENCH_server.json]`
pub fn cmd_loadgen(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "addr",
        "local",
        "requests",
        "threads",
        "tags",
        "rounds",
        "workers",
        "queue",
        "verify-deterministic",
        "bench-json",
        "telemetry",
    ])?;
    let requests: usize = args.get_or("requests", 10_000)?;
    let threads: usize = args.get_or("threads", 8)?;
    let tags: usize = args.get_or("tags", 200)?;
    let rounds: u32 = args.get_or("rounds", 4)?;
    let verify = args.switch("verify-deterministic");
    if requests == 0 || threads == 0 {
        return Err(ArgError("--requests and --threads must be positive".into()));
    }
    let plan = Plan {
        requests,
        threads,
        tags,
        rounds,
    };

    // --local spins up an in-process server (deterministic whenever we are
    // going to compare runs); --addr targets one started elsewhere, which
    // must itself run --deterministic for --verify-deterministic to hold.
    let local = if args.switch("local") {
        let mut config = server_config(args, "127.0.0.1:0")?;
        config.deterministic = verify || config.deterministic;
        Some(serve(&config).map_err(|e| ArgError(format!("bind {}: {e}", config.addr)))?)
    } else {
        None
    };
    let addr = match (&local, args.get("addr")) {
        (Some(handle), None) => handle.addr(),
        (None, Some(raw)) => raw
            .parse()
            .map_err(|_| ArgError(format!("--addr: cannot parse {raw:?}")))?,
        (None, None) => return Err(ArgError("loadgen needs --addr HOST:PORT or --local".into())),
        (Some(_), Some(_)) => return Err(ArgError("--addr and --local are exclusive".into())),
    };

    let first = run_batch(addr, &plan)?;
    print_report("run 1", &first);
    if let Some(path) = args.get("bench-json") {
        write_bench_json(path, &plan, &first)
            .map_err(|e| ArgError(format!("--bench-json {path}: {e}")))?;
        println!("bench json    : {path}");
    }
    if verify {
        let second = run_batch(addr, &plan)?;
        print_report("run 2", &second);
        if second.digest == first.digest {
            println!("deterministic : digests identical across runs");
        } else {
            shutdown_local(local);
            return Err(ArgError(format!(
                "determinism violated: digest {:#018x} != {:#018x}",
                first.digest, second.digest
            )));
        }
    }
    shutdown_local(local);

    let failures = first.lost + first.malformed;
    if failures > 0 {
        return Err(ArgError(format!(
            "{} lost and {} malformed replies out of {}",
            first.lost, first.malformed, plan.requests
        )));
    }
    Ok(())
}

fn server_config(args: &Args, default_addr: &str) -> Result<ServerConfig, ArgError> {
    let workers: usize = args.get_or("workers", 4)?;
    let queue_capacity: usize = args.get_or("queue", 64)?;
    if workers == 0 || queue_capacity == 0 {
        return Err(ArgError("--workers and --queue must be positive".into()));
    }
    let deadline_ms: u64 = args.get_or("deadline-ms", 0)?;
    Ok(ServerConfig {
        addr: args.get("addr").unwrap_or(default_addr).to_string(),
        workers,
        queue_capacity,
        deterministic: args.switch("deterministic"),
        default_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
    })
}

fn shutdown_local(local: Option<ServerHandle>) {
    if let Some(handle) = local {
        handle.shutdown();
        handle.join();
    }
}

#[derive(Clone, Copy)]
struct Plan {
    requests: usize,
    threads: usize,
    tags: usize,
    rounds: u32,
}

#[derive(Default)]
struct BatchReport {
    ok: usize,
    overloaded: usize,
    errors: usize,
    lost: usize,
    malformed: usize,
    /// XOR of per-reply FNV-1a hashes — order-independent, so concurrent
    /// threads need no coordination and equal reply *sets* compare equal.
    digest: u64,
    /// Per-request roundtrip latencies in nanoseconds (replied requests
    /// only), for exact percentiles.
    latency_ns: Vec<u64>,
    elapsed: Duration,
}

impl BatchReport {
    fn absorb(&mut self, other: &BatchReport) {
        self.ok += other.ok;
        self.overloaded += other.overloaded;
        self.errors += other.errors;
        self.lost += other.lost;
        self.malformed += other.malformed;
        self.digest ^= other.digest;
        self.latency_ns.extend_from_slice(&other.latency_ns);
    }

    /// Exact latency percentile (nearest-rank) over the replied requests.
    fn percentile(&self, q: f64) -> u64 {
        let mut sorted = self.latency_ns.clone();
        sorted.sort_unstable();
        percentile_of(&sorted, q)
    }
}

/// Nearest-rank percentile of an already-sorted sample (0 when empty).
fn percentile_of(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// The machine-readable benchmark artifact the repro harness tracks:
/// throughput plus tail latency, one JSON object.
fn write_bench_json(path: &str, plan: &Plan, r: &BatchReport) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut sorted = r.latency_ns.clone();
    sorted.sort_unstable();
    let json = format!(
        concat!(
            "{{\"benchmark\":\"pet-server-loadgen\",",
            "\"requests\":{},\"threads\":{},\"tags\":{},\"rounds\":{},",
            "\"elapsed_s\":{:.6},\"throughput_rps\":{:.1},",
            "\"ok\":{},\"overloaded\":{},\"errors\":{},\"malformed\":{},\"lost\":{},",
            "\"latency_ns\":{{\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}},",
            "\"digest\":\"{:#018x}\"}}\n"
        ),
        plan.requests,
        plan.threads,
        plan.tags,
        plan.rounds,
        r.elapsed.as_secs_f64(),
        plan.requests as f64 / r.elapsed.as_secs_f64().max(1e-9),
        r.ok,
        r.overloaded,
        r.errors,
        r.malformed,
        r.lost,
        percentile_of(&sorted, 0.50),
        percentile_of(&sorted, 0.95),
        percentile_of(&sorted, 0.99),
        sorted.last().copied().unwrap_or(0),
        r.digest,
    );
    std::fs::write(path, json)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fires the whole closed-loop batch: each thread owns one connection and
/// keeps exactly one request in flight. Ids are `t<thread>-<i>`, so in
/// deterministic mode the reply set is a pure function of the plan.
fn run_batch(addr: SocketAddr, plan: &Plan) -> Result<BatchReport, ArgError> {
    let started = Instant::now();
    let reports: Vec<BatchReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.threads)
            .map(|t| {
                // Spread the remainder so every request is accounted for.
                let quota =
                    plan.requests / plan.threads + usize::from(t < plan.requests % plan.threads);
                scope.spawn(move || thread_batch(addr, plan, t, quota))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread"))
            .collect()
    });
    let mut total = BatchReport::default();
    for r in &reports {
        total.absorb(r);
    }
    total.elapsed = started.elapsed();
    Ok(total)
}

fn thread_batch(addr: SocketAddr, plan: &Plan, thread: usize, quota: usize) -> BatchReport {
    let mut report = BatchReport::default();
    let Ok(mut client) = Client::connect(addr) else {
        report.lost = quota;
        return report;
    };
    let _ = client.set_read_timeout(Some(Duration::from_secs(60)));
    for i in 0..quota {
        let id = format!("t{thread}-{i}");
        let line = format!(
            r#"{{"id":"{id}","verb":"estimate","tags":{},"rounds":{}}}"#,
            plan.tags, plan.rounds
        );
        let sent = Instant::now();
        let Ok(reply) = client.roundtrip(&line) else {
            // Connection gone: everything still unsent is lost too.
            report.lost += quota - i;
            return report;
        };
        report
            .latency_ns
            .push(u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX));
        match classify(&reply, &id) {
            Reply::Ok => report.ok += 1,
            Reply::Overloaded => report.overloaded += 1,
            Reply::OtherError => report.errors += 1,
            Reply::Malformed => {
                report.malformed += 1;
                continue; // don't fold garbage into the digest
            }
        }
        report.digest ^= fnv1a(reply.as_bytes());
    }
    report
}

enum Reply {
    Ok,
    Overloaded,
    OtherError,
    Malformed,
}

fn classify(reply: &str, expect_id: &str) -> Reply {
    let Ok(v) = Json::parse(reply) else {
        return Reply::Malformed;
    };
    if v.get("id").and_then(Json::as_str) != Some(expect_id) {
        return Reply::Malformed;
    }
    match v.get("ok").and_then(Json::as_bool) {
        Some(true) => Reply::Ok,
        Some(false) => match v.get("error").and_then(Json::as_str) {
            Some("overloaded") => Reply::Overloaded,
            Some(_) => Reply::OtherError,
            None => Reply::Malformed,
        },
        None => Reply::Malformed,
    }
}

fn print_report(label: &str, r: &BatchReport) {
    let sent = r.ok + r.overloaded + r.errors + r.lost + r.malformed;
    println!(
        "{label}: {sent} requests in {:.2} s ({:.0} req/s)",
        r.elapsed.as_secs_f64(),
        sent as f64 / r.elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "  ok {}, overloaded {}, other errors {}, malformed {}, lost {}",
        r.ok, r.overloaded, r.errors, r.malformed, r.lost
    );
    println!(
        "  latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        r.percentile(0.50) as f64 / 1e6,
        r.percentile(0.95) as f64 / 1e6,
        r.percentile(0.99) as f64 / 1e6
    );
    println!("  reply digest {:#018x}", r.digest);
}
