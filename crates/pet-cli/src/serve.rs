//! `pet serve` and `pet loadgen` — the service surface of the CLI.
//!
//! `serve` runs the pet-server daemon in the foreground — threaded or
//! evented backend, chosen with `--backend` — until a client sends the
//! `shutdown` verb, then prints the final RED metrics. `loadgen` drives
//! the closed-loop generator in [`pet_server::loadgen`]: N concurrent
//! connections split across driver threads, up to `--pipeline` requests
//! in flight per connection, every reply validated and folded into an
//! order-independent digest so two runs against a deterministic server —
//! or the same run against the two backends — can be compared bit-for-bit
//! (`--verify-deterministic`).

use crate::args::{ArgError, Args};
use pet_bench::ledger;
use pet_server::loadgen::{run_batch, BatchReport, BenchRun, Plan};
use pet_server::{serve, Backend, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::time::Duration;

/// `pet serve [--addr 127.0.0.1:7878] [--backend threaded|evented]
/// [--workers 4] [--queue 64] [--deterministic] [--deadline-ms D]
/// [--addr-file path]`
pub fn cmd_serve(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "addr",
        "backend",
        "workers",
        "queue",
        "deterministic",
        "deadline-ms",
        "addr-file",
        "telemetry",
    ])?;
    let config = server_config(args, "127.0.0.1:7878")?;
    let handle = serve(&config).map_err(|e| ArgError(format!("bind {}: {e}", config.addr)))?;
    let addr = handle.addr();
    if let Some(path) = args.get("addr-file") {
        // Lets scripts (and the CI smoke gate) discover an ephemeral port.
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| ArgError(format!("--addr-file {path}: {e}")))?;
    }
    println!("pet-server listening on {addr}");
    println!(
        "  backend {}, workers {}, queue capacity {}, deterministic {}",
        config.backend.name(),
        config.workers,
        config.queue_capacity,
        config.deterministic
    );
    println!("  send {{\"id\":\"bye\",\"verb\":\"shutdown\"}} to stop");
    let summary = handle.join();
    println!("\nfinal metrics:\n{}", summary.render());
    Ok(())
}

/// `pet loadgen (--addr HOST:PORT | --local) [--requests 10000]
/// [--connections 8] [--threads 8] [--pipeline 1] [--tags 200]
/// [--rounds 4] [--backend threaded|evented] [--workers 4] [--queue 64]
/// [--verify-deterministic] [--bench-json results/BENCH_server.json]`
///
/// `--backend` picks the in-process server for `--local` and labels the
/// bench artifact; with `--addr` it must match the remote server for the
/// label to be honest.
pub fn cmd_loadgen(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "addr",
        "local",
        "requests",
        "connections",
        "threads",
        "pipeline",
        "tags",
        "rounds",
        "backend",
        "workers",
        "queue",
        "verify-deterministic",
        "bench-json",
        "telemetry",
    ])?;
    let requests: usize = args.get_or("requests", 10_000)?;
    let threads: usize = args.get_or("threads", 8)?;
    let connections: usize = args.get_or("connections", threads)?;
    let pipeline: usize = args.get_or("pipeline", 1)?;
    let tags: usize = args.get_or("tags", 200)?;
    let rounds: u32 = args.get_or("rounds", 4)?;
    let verify = args.switch("verify-deterministic");
    if requests == 0 || threads == 0 || connections == 0 || pipeline == 0 {
        return Err(ArgError(
            "--requests, --connections, --threads and --pipeline must be positive".into(),
        ));
    }
    let backend = parse_backend(args)?;
    let plan = Plan {
        requests,
        connections,
        threads,
        pipeline,
        tags,
        rounds,
    };

    // --local spins up an in-process server (deterministic whenever we are
    // going to compare runs); --addr targets one started elsewhere, which
    // must itself run --deterministic for --verify-deterministic to hold.
    let local = if args.switch("local") {
        let mut config = server_config(args, "127.0.0.1:0")?;
        config.deterministic = verify || config.deterministic;
        Some(serve(&config).map_err(|e| ArgError(format!("bind {}: {e}", config.addr)))?)
    } else {
        None
    };
    let addr: SocketAddr = match (&local, args.get("addr")) {
        (Some(handle), None) => handle.addr(),
        (None, Some(raw)) => raw
            .parse()
            .map_err(|_| ArgError(format!("--addr: cannot parse {raw:?}")))?,
        (None, None) => return Err(ArgError("loadgen needs --addr HOST:PORT or --local".into())),
        (Some(_), Some(_)) => return Err(ArgError("--addr and --local are exclusive".into())),
    };

    let first = run_batch(addr, &plan);
    print_report("run 1", &plan, backend, &first);
    if let Some(path) = args.get("bench-json") {
        let run = BenchRun::new(backend.name(), &plan, &first);
        pet_server::loadgen::write_bench_json(path, &run)
            .map_err(|e| ArgError(format!("--bench-json {path}: {e}")))?;
        println!("bench json    : {path}");
        // The snapshot's directory also carries the append-only perf
        // ledger, so every recorded loadgen run lands in the trend history
        // without a separate `pet bench record` step.
        let ledger_path = std::path::Path::new(path)
            .parent()
            .unwrap_or_else(|| std::path::Path::new("."))
            .join("ledger.jsonl");
        let row = ledger::migrate::row_from_bench_run(
            &run,
            &ledger::current_commit(),
            "pet:loadgen",
            1,
            0.0,
        );
        ledger::append(&ledger_path, &[row])
            .map_err(|e| ArgError(format!("{}: {e}", ledger_path.display())))?;
        println!("ledger        : {}", ledger_path.display());
    }
    if verify {
        let second = run_batch(addr, &plan);
        print_report("run 2", &plan, backend, &second);
        if second.digest == first.digest {
            println!("deterministic : digests identical across runs");
        } else {
            shutdown_local(local);
            return Err(ArgError(format!(
                "determinism violated: digest {:#018x} != {:#018x}",
                first.digest, second.digest
            )));
        }
    }
    shutdown_local(local);

    let failures = first.lost + first.malformed;
    if failures > 0 || first.connect_failures > 0 {
        return Err(ArgError(format!(
            "{} lost and {} malformed replies out of {} ({} connections failed)",
            first.lost, first.malformed, plan.requests, first.connect_failures
        )));
    }
    Ok(())
}

pub(crate) fn parse_backend(args: &Args) -> Result<Backend, ArgError> {
    match args.get("backend") {
        None => Ok(Backend::default()),
        Some(raw) => Backend::parse(raw)
            .ok_or_else(|| ArgError(format!("--backend: {raw:?} is not threaded|evented"))),
    }
}

fn server_config(args: &Args, default_addr: &str) -> Result<ServerConfig, ArgError> {
    let workers: usize = args.get_or("workers", 4)?;
    let queue_capacity: usize = args.get_or("queue", 64)?;
    if workers == 0 || queue_capacity == 0 {
        return Err(ArgError("--workers and --queue must be positive".into()));
    }
    let deadline_ms: u64 = args.get_or("deadline-ms", 0)?;
    Ok(ServerConfig {
        addr: args.get("addr").unwrap_or(default_addr).to_string(),
        backend: parse_backend(args)?,
        workers,
        queue_capacity,
        deterministic: args.switch("deterministic"),
        default_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
    })
}

fn shutdown_local(local: Option<ServerHandle>) {
    if let Some(handle) = local {
        handle.shutdown();
        handle.join();
    }
}

fn print_report(label: &str, plan: &Plan, backend: Backend, r: &BatchReport) {
    let sent = r.ok + r.overloaded + r.errors + r.lost + r.malformed;
    println!(
        "{label}: {sent} requests in {:.2} s ({:.0} req/s) — backend {}, {} connections, pipeline {}",
        r.elapsed.as_secs_f64(),
        sent as f64 / r.elapsed.as_secs_f64().max(1e-9),
        backend.name(),
        plan.connections,
        plan.pipeline,
    );
    println!(
        "  ok {}, overloaded {}, other errors {}, malformed {}, lost {}, connect failures {}",
        r.ok, r.overloaded, r.errors, r.malformed, r.lost, r.connect_failures
    );
    println!(
        "  latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        r.percentile(0.50) as f64 / 1e6,
        r.percentile(0.95) as f64 / 1e6,
        r.percentile(0.99) as f64 / 1e6
    );
    println!("  reply digest {:#018x}", r.digest);
}
