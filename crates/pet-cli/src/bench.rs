//! `pet bench` — the perf-ledger surface of the CLI.
//!
//! Four actions over the append-only `results/ledger.jsonl`:
//!
//! - `record` appends fresh rows: a live kernel-suite run (`--suite
//!   kernel`), a snapshot file (`--from BENCH_*.json`, format sniffed), or
//!   a criterion output tree (`--criterion-dir`).
//! - `migrate` ingests every `BENCH_*.json` under `--results` in one go —
//!   how the ledger bootstraps its history from pre-ledger snapshots.
//! - `report` renders per-metric trend CSV + per-bench SVG charts.
//! - `gate` compares pinned metrics between a baseline ledger (a file or a
//!   git ref holding one) and the current ledger, writes a machine-readable
//!   verdict, and exits nonzero on regression.

use crate::args::{ArgError, Args};
use pet_bench::ledger::{self, gate, migrate, trend, LedgerRow};
use std::path::{Path, PathBuf};

/// Dispatches `pet bench <record|migrate|report|gate> [--flags]`; `argv`
/// is everything after the `bench` word.
pub fn cmd_bench(args: &Args) -> Result<(), ArgError> {
    match args.command.as_str() {
        "record" => cmd_record(args),
        "migrate" => cmd_migrate(args),
        "report" => cmd_report(args),
        "gate" => cmd_gate(args),
        other => Err(ArgError(format!(
            "unknown bench action {other:?} (expected record, migrate, report or gate)"
        ))),
    }
}

fn ledger_path(args: &Args) -> PathBuf {
    PathBuf::from(args.get("ledger").unwrap_or("results/ledger.jsonl"))
}

fn append_deduped(path: &Path, rows: Vec<LedgerRow>) -> Result<usize, ArgError> {
    // A ledger that does not exist yet is simply empty history.
    let existing = if path.is_file() {
        ledger::load(path).map_err(|e| ArgError(format!("{}: {e}", path.display())))?
    } else {
        Vec::new()
    };
    let fresh = migrate::without_duplicates(&existing, rows);
    let appended = fresh.len();
    ledger::append(path, &fresh).map_err(|e| ArgError(format!("{}: {e}", path.display())))?;
    Ok(appended)
}

/// `pet bench record (--suite kernel [--quick] [--best-of 3] | --from FILE
/// | --criterion-dir DIR) [--ledger results/ledger.jsonl] [--commit C]
/// [--source LABEL]`
fn cmd_record(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "suite",
        "quick",
        "best-of",
        "from",
        "criterion-dir",
        "ledger",
        "commit",
        "source",
        "telemetry",
    ])?;
    let path = ledger_path(args);
    let commit = args
        .get("commit")
        .map_or_else(ledger::current_commit, str::to_string);
    let rows = match (
        args.get("suite"),
        args.get("from"),
        args.get("criterion-dir"),
    ) {
        (Some("kernel"), None, None) => {
            let best_of: usize = args.get_or("best-of", 3)?;
            if best_of == 0 {
                return Err(ArgError("--best-of must be >= 1".into()));
            }
            let bench = pet_bench::suite::run_kernel(args.switch("quick"), best_of);
            println!("{}", bench.render(&commit));
            let source = args.get("source").unwrap_or("pet:bench-record");
            vec![bench.ledger_row(&commit, source)]
        }
        (Some(other), None, None) => {
            return Err(ArgError(format!(
                "unknown suite {other:?} (available: kernel)"
            )))
        }
        (None, Some(file), None) => {
            let text = std::fs::read_to_string(file)
                .map_err(|e| ArgError(format!("--from {file}: {e}")))?;
            let source = args
                .get("source")
                .map_or_else(|| format!("record:{file}"), str::to_string);
            migrate::sniff_snapshot(&text, &source, Some(&commit))
                .map_err(|e| ArgError(format!("--from {file}: {e}")))?
        }
        (None, None, Some(dir)) => {
            let source = args
                .get("source")
                .map_or_else(|| format!("criterion:{dir}"), str::to_string);
            migrate::criterion_dir(Path::new(dir), &source, &commit).map_err(ArgError)?
        }
        _ => {
            return Err(ArgError(
                "record needs exactly one of --suite kernel, --from FILE, --criterion-dir DIR"
                    .into(),
            ))
        }
    };
    let total = rows.len();
    let appended = append_deduped(&path, rows)?;
    println!(
        "bench record: {appended} row(s) appended to {} ({} duplicate(s) skipped)",
        path.display(),
        total - appended
    );
    Ok(())
}

/// `pet bench migrate [--results results] [--ledger results/ledger.jsonl]`
///
/// Ingests `BENCH_kernel.json`, `BENCH_server.json` and `BENCH_fleet.json`
/// (whichever exist) so ledger history starts from the committed seed
/// numbers. Idempotent: re-running appends nothing new.
fn cmd_migrate(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["results", "ledger", "commit", "telemetry"])?;
    let results = PathBuf::from(args.get("results").unwrap_or("results"));
    let path = ledger_path(args);
    let mut rows = Vec::new();
    let mut seen_any = false;
    for name in ["BENCH_kernel.json", "BENCH_server.json", "BENCH_fleet.json"] {
        let file = results.join(name);
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        seen_any = true;
        // Migrated rows keep the snapshot's own commit when it records one
        // (only the kernel snapshot does) unless --commit overrides.
        let migrated =
            migrate::sniff_snapshot(&text, &format!("migrate:{name}"), args.get("commit"))
                .map_err(|e| ArgError(format!("{}: {e}", file.display())))?;
        println!("bench migrate: {name}: {} row(s)", migrated.len());
        rows.extend(migrated);
    }
    if !seen_any {
        return Err(ArgError(format!(
            "no BENCH_*.json snapshots under {}",
            results.display()
        )));
    }
    let total = rows.len();
    let appended = append_deduped(&path, rows)?;
    println!(
        "bench migrate: {appended} row(s) appended to {} ({} duplicate(s) skipped)",
        path.display(),
        total - appended
    );
    Ok(())
}

/// `pet bench report [--ledger results/ledger.jsonl] [--out results]`
fn cmd_report(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["ledger", "out", "telemetry"])?;
    let path = ledger_path(args);
    let rows = load_required(&path)?;
    let out = PathBuf::from(args.get("out").map_or_else(
        || {
            path.parent()
                .filter(|p| !p.as_os_str().is_empty())
                .unwrap_or_else(|| Path::new("."))
                .to_string_lossy()
                .into_owned()
        },
        str::to_string,
    ));
    let series = trend::series_of(&rows);
    print!("{}", trend::render_summary(&series));
    std::fs::create_dir_all(&out).map_err(|e| ArgError(format!("{}: {e}", out.display())))?;
    let csv = out.join("trends.csv");
    trend::write_csv(&series, &csv).map_err(|e| ArgError(format!("{}: {e}", csv.display())))?;
    println!("trend csv : {}", csv.display());
    let svgs = trend::write_svgs(&series, &out)
        .map_err(|e| ArgError(format!("{}: {e}", out.display())))?;
    for svg in svgs {
        println!("trend svg : {}", svg.display());
    }
    Ok(())
}

/// `pet bench gate --baseline <file|git-ref> [--ledger results/ledger.jsonl]
/// [--threshold 10%] [--pin bench[:prefix]:metric,...] [--verdict path]`
///
/// Exits with status 1 (after printing every check and writing the
/// verdict) when any pinned metric regressed beyond threshold + noise
/// floor, or compared against invalid data.
fn cmd_gate(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "baseline",
        "ledger",
        "threshold",
        "pin",
        "verdict",
        "telemetry",
    ])?;
    let baseline_spec: String = args.require("baseline")?;
    let threshold = gate::parse_threshold(args.get("threshold").unwrap_or("10%"))
        .map_err(|e| ArgError(format!("--threshold: {e}")))?;
    let pins = match args.get("pin") {
        None => gate::default_pins(),
        Some(raw) => raw
            .split(',')
            .map(|spec| gate::PinnedMetric::parse(spec.trim()))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| ArgError(format!("--pin: {e}")))?,
    };
    let path = ledger_path(args);
    let candidate = load_required(&path)?;
    let baseline = load_baseline(&baseline_spec, &path)?;
    let outcome = gate::evaluate(&baseline, &candidate, &pins, threshold);
    print!("{}", outcome.render());
    if let Some(verdict) = args.get("verdict") {
        if let Some(parent) = Path::new(verdict).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| ArgError(format!("--verdict {verdict}: {e}")))?;
            }
        }
        std::fs::write(verdict, outcome.to_json())
            .map_err(|e| ArgError(format!("--verdict {verdict}: {e}")))?;
        println!("verdict   : {verdict}");
    }
    if outcome.pass() {
        println!("bench gate: PASS (threshold {:.1}%)", threshold * 100.0);
        Ok(())
    } else {
        eprintln!("bench gate: FAIL (threshold {:.1}%)", threshold * 100.0);
        std::process::exit(1);
    }
}

fn load_required(path: &Path) -> Result<Vec<LedgerRow>, ArgError> {
    let rows = ledger::load(path).map_err(|e| ArgError(format!("{}: {e}", path.display())))?;
    if rows.is_empty() {
        return Err(ArgError(format!(
            "{} has no rows (run `pet bench migrate` or `pet bench record` first)",
            path.display()
        )));
    }
    Ok(rows)
}

/// A baseline is a ledger file path or a git ref; a ref resolves to the
/// ledger's repo-relative path at that commit (`git show REF:results/...`).
fn load_baseline(spec: &str, ledger: &Path) -> Result<Vec<LedgerRow>, ArgError> {
    if Path::new(spec).is_file() {
        let text = std::fs::read_to_string(spec).map_err(|e| ArgError(format!("{spec}: {e}")))?;
        return ledger::parse_ledger(&text).map_err(|e| ArgError(format!("{spec}: {e}")));
    }
    let rel = ledger.to_string_lossy();
    let output = std::process::Command::new("git")
        .args(["show", &format!("{spec}:{rel}")])
        .output()
        .map_err(|e| ArgError(format!("--baseline {spec}: git: {e}")))?;
    if !output.status.success() {
        return Err(ArgError(format!(
            "--baseline {spec} is neither a file nor a git ref holding {rel}: {}",
            String::from_utf8_lossy(&output.stderr).trim()
        )));
    }
    let text = String::from_utf8_lossy(&output.stdout);
    ledger::parse_ledger(&text).map_err(|e| ArgError(format!("--baseline {spec}: {e}")))
}
