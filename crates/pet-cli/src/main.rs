//! `pet` — command-line interface to the PET reproduction.
//!
//! ```text
//! pet estimate --tags 50000 [--epsilon 0.05] [--delta 0.01]
//!              [--protocol pet|fneb|lof|ezb] [--linear] [--adaptive]
//!              [--rounds M] [--seed S]
//! pet identify --tags 50000 [--protocol aloha|treewalk] [--seed S]
//! pet compare  --tags 50000 [--epsilon 0.05] [--delta 0.01] [--seed S]
//! pet monitor  --expected 10000 --present 9000 [--alpha 0.01] [--seed S]
//! pet monitor  --tags 2000 [--updates 8] [--window 4] [--churn-rate 20]
//!              [--burst-at K --burst-size B] [--addr HOST:PORT] [--seed S]
//! pet tree     --tags 4 [--height 4] [--path 0011] [--seed S]
//! pet info     [--epsilon 0.05] [--delta 0.01]
//! pet telemetry --file events.jsonl
//! pet serve    [--addr 127.0.0.1:7878] [--backend threaded|evented] [--workers 4]
//! pet loadgen  (--addr HOST:PORT | --local) [--requests 10000] [--connections 8]
//! pet fleet    (--spawn N | --agents host:port,...) [--rounds 64] [--quorum q]
//! ```
//!
//! Every command accepts `--telemetry <path.jsonl>`: protocol-level
//! counters, gauges, and span timings (see `pet-obs`) stream to the file as
//! JSON Lines, which `pet telemetry --file <path.jsonl>` summarizes.

mod args;
mod bench;
mod fleet;
mod serve;

use args::{ArgError, Args};
use pet_baselines::{CardinalityEstimator, Ezb, Fneb, Fsa, Lof, PetAdapter};
use pet_core::adaptive::AdaptiveSession;
use pet_core::bits::BitString;
use pet_core::config::{Mitigation, PetConfig, SearchStrategy};
use pet_core::front::Estimator;
use pet_core::oracle::CodeRoster;
use pet_core::tree::Tree;
use pet_ident::{FramedAloha, IdentificationProtocol, TreeWalk};
use pet_phy::channel::{ChannelModel, LossyChannel};
use pet_phy::{Air, PhyProfile, TimeModel};
use pet_sim::experiments::robustness;
use pet_stats::accuracy::Accuracy;
use pet_stats::gray::{PHI, SIGMA_H};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

const USAGE: &str = "usage: pet <estimate|identify|compare|monitor|tree|info> [--flags]
  pet estimate --tags 50000 [--epsilon 0.05] [--delta 0.01] [--protocol pet|fneb|lof|ezb|fsa]
               [--linear] [--adaptive] [--rounds M] [--seed S] [--phy gen2]
               [--miss P] [--false-busy P] [--probes R | --trim K]
  pet robustness [--tags 5000] [--rounds 128] [--runs 40] [--miss 0,0.01,0.02,0.05,0.1]
               [--false-busy 0] [--probes 2] [--seed S] [--out target/robustness]
  pet identify --tags 50000 [--protocol aloha|treewalk] [--seed S]
  pet compare  --tags 50000 [--epsilon 0.05] [--delta 0.01] [--seed S]
  pet monitor  --expected 10000 --present 9000 [--alpha 0.01] [--seed S]
  pet monitor  --tags 2000 [--updates 8] [--window 4] [--rounds 32]
               [--alarm-fraction 0.5] [--churn-rate 20] [--burst-at K --burst-size B]
               [--addr HOST:PORT] [--seed S]   (streaming estimation loop)
  pet tree     --tags 4 [--height 4] [--path 0011] [--seed S]
  pet trace    --tags 16 [--height 6] [--rounds 2] [--linear] [--seed S]
  pet info     [--epsilon 0.05] [--delta 0.01]
  pet lane     (report detected/active SIMD lane; PET_FORCE_LANE=scalar|sse2|avx2 overrides)
  pet telemetry --file events.jsonl
  pet serve    [--addr 127.0.0.1:7878] [--backend threaded|evented] [--workers 4]
               [--queue 64] [--deterministic] [--deadline-ms D] [--addr-file path]
  pet loadgen  (--addr HOST:PORT | --local) [--backend threaded|evented]
               [--requests 10000] [--connections 8] [--threads 8] [--pipeline 1]
               [--tags 200] [--rounds 4] [--verify-deterministic]
               [--bench-json results/BENCH_server.json]
  pet fleet    (--spawn N [--backend threaded|evented] | --agents H:P,...)
               [--tags 10000] [--zones Z] [--phy gen2]
               [--coverage 0,1;1,2;...] [--deploy-seed 7] [--rounds 64] [--seed 42]
               [--quorum 1] [--deadline-ms 2000] [--dead-after 2] [--miss P]
               [--kill R@ROUND,...] [--stall R@ROUND:MS,...] [--drop R@ROUND,...]
               [--restore R@ROUND,...] [--shutdown-agents] [--bench-json path]
  pet bench record  (--suite kernel [--quick] [--best-of 3] | --from BENCH_*.json
               | --criterion-dir DIR) [--ledger results/ledger.jsonl]
               [--commit C] [--source LABEL]
  pet bench migrate [--results results] [--ledger results/ledger.jsonl]
  pet bench report  [--ledger results/ledger.jsonl] [--out results]
  pet bench gate    --baseline <file|git-ref> [--threshold 10%]
               [--pin bench[:prefix]:metric,...] [--verdict path]
               [--ledger results/ledger.jsonl]   (exit 1 on regression)
(every command also accepts --telemetry <path.jsonl> to stream pet-obs events)";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn accuracy_from(args: &Args) -> Result<Accuracy, ArgError> {
    let epsilon: f64 = args.get_or("epsilon", 0.05)?;
    let delta: f64 = args.get_or("delta", 0.01)?;
    Accuracy::new(epsilon, delta).map_err(|e| ArgError(e.to_string()))
}

fn run(argv: &[String]) -> Result<(), ArgError> {
    // `pet bench <action> [--flags]` carries an action word the flat
    // grammar would reject as a positional; re-parse everything after
    // `bench` so the action becomes the command.
    if argv.first().map(String::as_str) == Some("bench") {
        let args = Args::parse(argv[1..].iter().cloned())?;
        let _telemetry = TelemetryGuard::from_args(&args)?;
        return bench::cmd_bench(&args);
    }
    let args = Args::parse(argv.iter().cloned())?;
    let _telemetry = TelemetryGuard::from_args(&args)?;
    match args.command.as_str() {
        "estimate" => cmd_estimate(&args),
        "robustness" => cmd_robustness(&args),
        "identify" => cmd_identify(&args),
        "compare" => cmd_compare(&args),
        "monitor" => cmd_monitor(&args),
        "tree" => cmd_tree(&args),
        "trace" => cmd_trace(&args),
        "info" => cmd_info(&args),
        "lane" => cmd_lane(&args),
        "telemetry" => cmd_telemetry(&args),
        "serve" => serve::cmd_serve(&args),
        "loadgen" => serve::cmd_loadgen(&args),
        "fleet" => fleet::cmd_fleet(&args),
        other => Err(ArgError(format!("unknown command {other:?}"))),
    }
}

/// Installs the JSONL telemetry sink for the lifetime of one command when
/// `--telemetry <path.jsonl>` is given, and flushes it on the way out (both
/// success and error paths).
struct TelemetryGuard {
    installed: bool,
}

impl TelemetryGuard {
    fn from_args(args: &Args) -> Result<Self, ArgError> {
        let Some(path) = args.get("telemetry") else {
            return Ok(Self { installed: false });
        };
        // A bare `--telemetry` parses as the boolean sentinel "true"; don't
        // silently write a telemetry file named `true` into the cwd.
        if path == "true" {
            return Err(ArgError(
                "--telemetry requires a file path (e.g. --telemetry run.jsonl)".into(),
            ));
        }
        let sink = pet_obs::JsonlSink::create(path)
            .map_err(|e| ArgError(format!("--telemetry {path}: {e}")))?;
        pet_obs::install(std::sync::Arc::new(sink));
        Ok(Self { installed: true })
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        if self.installed {
            pet_obs::shutdown();
        }
    }
}

/// `pet telemetry --file events.jsonl`: parse a JSONL event stream written
/// by `--telemetry` back into an aggregate report.
fn cmd_telemetry(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["file"])?;
    let path: String = args.require("file")?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| ArgError(format!("--file {path}: {e}")))?;
    let mut summary = pet_obs::Summary::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = pet_obs::Event::parse_jsonl(line)
            .map_err(|e| ArgError(format!("{path}:{}: {e}", i + 1)))?;
        summary.accumulate(&event);
    }
    print!("{}", summary.render());
    Ok(())
}

/// Builds the channel model from `--miss` / `--false-busy` (both default 0,
/// which selects the perfect channel the paper assumes).
fn channel_from(args: &Args) -> Result<ChannelModel, ArgError> {
    let miss: f64 = args.get_or("miss", 0.0)?;
    let false_busy: f64 = args.get_or("false-busy", 0.0)?;
    if miss == 0.0 && false_busy == 0.0 {
        return Ok(ChannelModel::Perfect);
    }
    LossyChannel::new(miss, false_busy)
        .map(ChannelModel::Lossy)
        .map_err(|e| ArgError(e.to_string()))
}

/// Builds the mitigation from `--probes R` (slot-level re-probe) or
/// `--trim K` (aggregation-level trimmed mean); the two are exclusive.
fn mitigation_from(args: &Args) -> Result<Mitigation, ArgError> {
    match (args.get("probes"), args.get("trim")) {
        (Some(_), Some(_)) => Err(ArgError(
            "--probes and --trim are mutually exclusive mitigations".into(),
        )),
        (Some(raw), None) => raw
            .parse()
            .map(|probes| Mitigation::ReProbe { probes })
            .map_err(|_| ArgError(format!("--probes: cannot parse {raw:?}"))),
        (None, Some(raw)) => raw
            .parse()
            .map(|trim| Mitigation::TrimmedMean { trim })
            .map_err(|_| ArgError(format!("--trim: cannot parse {raw:?}"))),
        (None, None) => Ok(Mitigation::None),
    }
}

fn cmd_estimate(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "tags",
        "epsilon",
        "delta",
        "protocol",
        "linear",
        "adaptive",
        "rounds",
        "seed",
        "miss",
        "false-busy",
        "probes",
        "trim",
        "phy",
        "telemetry",
    ])?;
    let n: usize = args.require("tags")?;
    let accuracy = accuracy_from(args)?;
    let seed: u64 = args.get_or("seed", 0xD0C5)?;
    let protocol = args.get("protocol").unwrap_or("pet");
    let channel = channel_from(args)?;
    let mitigation = mitigation_from(args)?;
    let phy = phy_from(args)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let keys: Vec<u64> = (0..n as u64).collect();

    if protocol == "pet" {
        let config = PetConfig::builder()
            .accuracy(accuracy)
            .search(if args.switch("linear") {
                SearchStrategy::Linear
            } else {
                SearchStrategy::Binary
            })
            .channel(channel)
            .mitigation(mitigation)
            .phy(phy)
            .build()
            .map_err(|e| ArgError(e.to_string()))?;
        let report = if args.switch("adaptive") {
            let mut oracle = CodeRoster::new(&keys, &config, pet_hash_family());
            let mut air = Air::new(channel);
            AdaptiveSession::new(config).run(&mut oracle, &mut air, &mut rng)
        } else {
            // The unified front door: the configured backend (kernel by
            // default) produces reports bit-for-bit equal to the oracle
            // reader.
            let rounds = match args.get("rounds") {
                Some(raw) => raw
                    .parse()
                    .map_err(|_| ArgError("--rounds: not an integer".into()))?,
                None => config.rounds(),
            };
            Estimator::with_family(config, pet_hash_family())
                .try_estimate_keys_rounds(&keys, rounds, &mut rng)
                .map_err(|e| ArgError(e.to_string()))?
        };
        println!("protocol      : PET (H = {})", config.height());
        println!("estimate      : {:.0}   (true: {n})", report.estimate);
        println!(
            "relative error: {:+.2}%",
            (report.estimate / n as f64 - 1.0) * 100.0
        );
        println!("rounds        : {}", report.rounds);
        print_costs(&report.metrics);
        if let Some(phy) = report.phy {
            print_phy(&phy);
        }
        return Ok(());
    }

    let estimator: Box<dyn CardinalityEstimator> = match protocol {
        "fneb" => Box::new(Fneb::paper_default()),
        "lof" => Box::new(Lof::paper_default()),
        "ezb" => Box::new(Ezb::paper_default()),
        "fsa" => Box::new(Fsa::gen2_default()),
        other => {
            return Err(ArgError(format!(
                "unknown protocol {other:?} (pet|fneb|lof|ezb|fsa)"
            )))
        }
    };
    if mitigation != Mitigation::None {
        return Err(ArgError(
            "--probes/--trim mitigations apply to --protocol pet only".into(),
        ));
    }
    let mut air = Air::new(channel);
    let est = if let Some(rounds) = args.get("rounds") {
        let rounds: u32 = rounds
            .parse()
            .map_err(|_| ArgError("--rounds: not an integer".into()))?;
        estimator.estimate_rounds(&keys, rounds, &mut air, &mut rng)
    } else {
        estimator.estimate(&keys, &accuracy, &mut air, &mut rng)
    };
    println!("protocol      : {}", estimator.name());
    println!("estimate      : {:.0}   (true: {n})", est.estimate);
    println!(
        "relative error: {:+.2}%",
        (est.estimate / n as f64 - 1.0) * 100.0
    );
    println!("rounds        : {}", est.rounds);
    print_costs(&est.metrics);
    if let Some(profile) = phy {
        print_phy(&profile.report(&est.metrics));
    }
    Ok(())
}

/// `pet robustness`: sweep accuracy vs channel-fault rates (unmitigated vs
/// re-probed) on the kernel backend, print the table, and write
/// `robustness.csv` plus `svg/robustness.svg` under `--out`.
fn cmd_robustness(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "tags",
        "rounds",
        "runs",
        "seed",
        "miss",
        "false-busy",
        "probes",
        "out",
        "telemetry",
    ])?;
    let defaults = robustness::RobustnessParams::default();
    let miss_rates = match args.get("miss") {
        None => defaults.miss_rates.clone(),
        Some(raw) => raw
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse::<f64>()
                    .map_err(|_| ArgError(format!("--miss: cannot parse {tok:?}")))
            })
            .collect::<Result<Vec<f64>, ArgError>>()?,
    };
    let params = robustness::RobustnessParams {
        n: args.get_or("tags", defaults.n)?,
        rounds: args.get_or("rounds", defaults.rounds)?,
        runs: args.get_or("runs", defaults.runs)?,
        seed: args.get_or("seed", defaults.seed)?,
        miss_rates,
        false_busy: args.get_or("false-busy", defaults.false_busy)?,
        probes: args.get_or("probes", defaults.probes)?,
    };
    let out: String = args.get("out").unwrap_or("target/robustness").to_string();
    let out_dir = std::path::Path::new(&out);
    std::fs::create_dir_all(out_dir).map_err(|e| ArgError(format!("--out {out}: {e}")))?;
    let rows = robustness::sweep(&params);
    pet_bench::report_robustness(&rows, out_dir).map_err(|e| ArgError(e.to_string()))?;
    pet_bench::figures::robustness(&rows, out_dir).map_err(|e| ArgError(e.to_string()))?;
    println!(
        "\nwrote {} and {}",
        out_dir.join("robustness.csv").display(),
        out_dir.join("svg").join("robustness.svg").display()
    );
    Ok(())
}

fn cmd_identify(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["tags", "protocol", "seed", "telemetry"])?;
    let n: usize = args.require("tags")?;
    let seed: u64 = args.get_or("seed", 0x1DE)?;
    let keys: Vec<u64> = (0..n as u64).collect();
    let protocol: Box<dyn IdentificationProtocol> = match args.get("protocol").unwrap_or("treewalk")
    {
        "aloha" => Box::new(FramedAloha::unbounded()),
        "treewalk" => Box::new(TreeWalk::new()),
        other => {
            return Err(ArgError(format!(
                "unknown protocol {other:?} (aloha|treewalk)"
            )))
        }
    };
    let mut air = Air::new(ChannelModel::Perfect);
    let mut rng = StdRng::seed_from_u64(seed);
    let report = protocol.identify(&keys, &mut air, &mut rng);
    println!("protocol   : {}", protocol.name());
    println!("identified : {} of {n}", report.identified);
    print_costs(&report.metrics);
    println!(
        "slots/tag  : {:.2}  (identification is Θ(n); try `pet compare`)",
        report.metrics.slots as f64 / n.max(1) as f64
    );
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["tags", "epsilon", "delta", "seed", "telemetry"])?;
    let n: usize = args.require("tags")?;
    let accuracy = accuracy_from(args)?;
    let seed: u64 = args.get_or("seed", 0xC0)?;
    let keys: Vec<u64> = (0..n as u64).collect();
    let protocols: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(PetAdapter::paper_default()),
        Box::new(Fneb::paper_default()),
        Box::new(Lof::paper_default()),
    ];
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>9} {:>14}",
        "protocol", "rounds", "slots", "estimate", "err %", "air time"
    );
    for p in &protocols {
        let mut air = Air::new(ChannelModel::Perfect);
        let mut rng = StdRng::seed_from_u64(seed);
        let est = p.estimate(&keys, &accuracy, &mut air, &mut rng);
        println!(
            "{:<8} {:>8} {:>12} {:>12.0} {:>8.2}% {:>12.2} s",
            p.name(),
            est.rounds,
            est.metrics.slots,
            est.estimate,
            (est.estimate / n as f64 - 1.0) * 100.0,
            TimeModel::gen2().elapsed(&est.metrics).as_secs_f64()
        );
    }
    Ok(())
}

fn cmd_monitor(args: &Args) -> Result<(), ArgError> {
    // Two modes share the verb: the one-shot z-test audit
    // (--expected/--present, the original `pet-apps` monitor) and the
    // streaming estimation loop (--tags ..., `pet-core::monitor`), local
    // or against a running server (--addr).
    if args.get("tags").is_some() || args.get("addr").is_some() {
        return cmd_monitor_stream(args);
    }
    args.expect_only(&["expected", "present", "alpha", "seed", "telemetry"])?;
    let expected: u64 = args.require("expected")?;
    let present: usize = args.require("present")?;
    let alpha: f64 = args.get_or("alpha", 0.01)?;
    let seed: u64 = args.get_or("seed", 0x40)?;
    let config = PetConfig::paper_default();
    let monitor = pet_apps::monitor::MissingTagMonitor::new(expected, alpha, config)
        .map_err(|e| ArgError(e.to_string()))?;
    let mut rng = StdRng::seed_from_u64(seed);
    let verdict = monitor.check(
        &pet_tags::population::TagPopulation::sequential(present),
        &mut rng,
    );
    println!("book inventory : {expected}");
    println!("estimate       : {:.0}", verdict.estimate);
    println!(
        "missing (est.) : {:.1}%",
        verdict.missing_fraction.max(0.0) * 100.0
    );
    println!("p-value        : {:.4}", verdict.p_value);
    println!(
        "verdict        : {}",
        if verdict.alarm {
            "ALARM — tags are missing"
        } else {
            "consistent with full inventory"
        }
    );
    println!(
        "(smallest deficit detectable with 95% power at this budget: {:.1}%)",
        monitor.detectable_fraction(0.95) * 100.0
    );
    Ok(())
}

/// The streaming monitor mode: `updates` periodic re-estimates of a
/// churning population, one line per update, with sliding-window
/// smoothing and the missing-tag alarm. Runs in-process by default;
/// `--addr` subscribes to a running server's `monitor` verb instead and
/// prints the raw delta stream.
fn cmd_monitor_stream(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "tags",
        "updates",
        "window",
        "rounds",
        "alarm-fraction",
        "churn-rate",
        "burst-at",
        "burst-size",
        "seed",
        "addr",
        "telemetry",
    ])?;
    let tags: usize = args.require("tags")?;
    let updates: usize = args.get_or("updates", 8)?;
    let window: usize = args.get_or("window", 4)?;
    let rounds: u32 = args.get_or("rounds", 32)?;
    let alarm_fraction: f64 = args.get_or("alarm-fraction", 0.5)?;
    let churn_rate: usize = args.get_or("churn-rate", 0)?;
    let burst_at: Option<usize> = match args.get("burst-at") {
        Some(_) => Some(args.require("burst-at")?),
        None => None,
    };
    let burst_size: usize = args.get_or("burst-size", 0)?;
    let seed: u64 = args.get_or("seed", 0x40)?;

    if let Some(addr) = args.get("addr") {
        let mut client =
            pet_server::Client::connect(addr).map_err(|e| ArgError(format!("{addr}: {e}")))?;
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(120)))
            .map_err(|e| ArgError(e.to_string()))?;
        let burst = burst_at.map_or(String::new(), |b| {
            format!(",\"burst_at\":{b},\"burst_size\":{burst_size}")
        });
        let line = format!(
            "{{\"id\":\"cli\",\"verb\":\"monitor\",\"tags\":{tags},\"updates\":{updates},\
             \"window\":{window},\"rounds\":{rounds},\"alarm_fraction\":{alarm_fraction},\
             \"churn_rate\":{churn_rate},\"seed\":\"{seed:x}\"{burst}}}"
        );
        client.send(&line).map_err(|e| ArgError(e.to_string()))?;
        for _ in 0..=updates {
            let reply = client.recv().map_err(|e| ArgError(e.to_string()))?;
            if reply.contains("\"ok\":false") {
                return Err(ArgError(format!("server refused: {reply}")));
            }
            println!("{reply}");
        }
        return Ok(());
    }

    let monitor_config = pet_core::monitor::MonitorConfig {
        config: PetConfig::paper_default(),
        rounds,
        window,
        alarm_fraction,
        reference: None,
        base_seed: seed,
    };
    let mut monitor =
        pet_core::monitor::Monitor::new(monitor_config).map_err(|e| ArgError(e.to_string()))?;
    let schedule = pet_tags::dynamics::ChurnSchedule {
        rate: churn_rate,
        burst_at,
        burst_size,
    };
    let mut timeline =
        pet_tags::dynamics::Timeline::new(pet_tags::population::TagPopulation::sequential(tags));
    println!(
        "{:>7} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "update", "truth", "estimate", "windowed", "delta", "alarm"
    );
    for update in 0..updates {
        for event in schedule.events_at(update) {
            timeline.apply(event);
        }
        let keys: Vec<u64> = timeline.population().keys().collect();
        let u = monitor
            .observe_keys(&keys)
            .map_err(|e| ArgError(e.to_string()))?;
        println!(
            "{:>7} {:>10} {:>12.0} {:>12.0} {:>+10.0} {:>8}",
            u.index,
            keys.len(),
            u.estimate,
            u.windowed,
            u.delta,
            if u.alarm { "ALARM" } else { "-" }
        );
    }
    if let Some(reference) = monitor.reference() {
        println!(
            "(reference {reference:.0}, alarm below {:.0}; window {window}, {rounds} rounds/update)",
            alarm_fraction * reference
        );
    }
    Ok(())
}

fn cmd_tree(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["tags", "height", "path", "seed", "telemetry"])?;
    let n: usize = args.require("tags")?;
    let height: u32 = args.get_or("height", 4)?;
    if !(1..=6).contains(&height) {
        return Err(ArgError("--height must be 1..=6 for rendering".into()));
    }
    let seed: u64 = args.get_or("seed", 0x7EE)?;
    let config = PetConfig::builder()
        .height(height)
        .manufacture_seed(seed)
        .build()
        .map_err(|e| ArgError(e.to_string()))?;
    let keys: Vec<u64> = (0..n as u64).collect();
    let roster = CodeRoster::new(&keys, &config, pet_hash_family());
    let codes: Vec<BitString> = roster
        .codes()
        .iter()
        .map(|&c| BitString::from_bits(c, height).expect("in range"))
        .collect();
    let tree = Tree::build(&codes, height);
    let path = match args.get("path") {
        Some(bits) => {
            let v = u64::from_str_radix(bits, 2)
                .map_err(|_| ArgError("--path must be a binary string".into()))?;
            if bits.len() != height as usize {
                return Err(ArgError(format!("--path must have exactly {height} bits")));
            }
            Some(BitString::from_bits(v, height).map_err(|e| ArgError(e.to_string()))?)
        }
        None => None,
    };
    println!(
        "PET over {n} tags, H = {height} (● black, · white{})",
        if path.is_some() {
            ", ◐ gray node, [x] estimating path"
        } else {
            ""
        }
    );
    print!("{}", tree.render(path.as_ref()));
    if let Some(p) = &path {
        if let Some(gray) = tree.gray_node(p) {
            println!(
                "gray node at depth {} (height {}): single-round estimate {:.1}",
                gray.prefix_len,
                gray.height,
                pet_stats::gray::estimate_from_mean_prefix(f64::from(gray.prefix_len))
            );
        }
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["tags", "height", "rounds", "linear", "seed", "telemetry"])?;
    let n: usize = args.require("tags")?;
    let height: u32 = args.get_or("height", 6)?;
    let rounds: u32 = args.get_or("rounds", 2)?;
    let seed: u64 = args.get_or("seed", 0x7ACE)?;
    let config = PetConfig::builder()
        .height(height)
        .search(if args.switch("linear") {
            SearchStrategy::Linear
        } else {
            SearchStrategy::Binary
        })
        .manufacture_seed(seed)
        .build()
        .map_err(|e| ArgError(e.to_string()))?;
    let keys: Vec<u64> = (0..n as u64).collect();
    let mut oracle = CodeRoster::new(&keys, &config, pet_hash_family());
    let mut air = Air::new(ChannelModel::Perfect).with_transcript(4096);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut estimator = pet_core::estimator::PetEstimator::new(height);
    println!(
        "PET protocol trace — {n} tags, H = {height}, {} search\n",
        if args.switch("linear") {
            "linear"
        } else {
            "binary"
        }
    );
    let mut slot_base = 0usize;
    for round in 0..rounds {
        let record = pet_core::reader::run_round(&config, &mut oracle, &mut air, &mut rng);
        estimator.push(record);
        let transcript = air.transcript().expect("transcript enabled");
        println!("round {round}:");
        for (i, rec) in transcript.records().iter().enumerate().skip(slot_base) {
            println!(
                "  slot {:>2}: {:>3} responder(s) → {}",
                i - slot_base,
                rec.responders,
                rec.outcome
            );
        }
        slot_base = transcript.len();
        println!(
            "  → L = {} (gray node height {}), {} slots{}",
            record.prefix_len,
            record.gray_height,
            record.slots,
            if record.disambiguated {
                ", disambiguation slot used"
            } else {
                ""
            }
        );
    }
    println!(
        "\nrunning estimate after {} round(s): {:.1}",
        estimator.rounds(),
        estimator.estimate()
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["epsilon", "delta", "telemetry"])?;
    let accuracy = accuracy_from(args)?;
    println!("PET constants (paper §4.2):");
    println!("  φ    = e^γ/√2          = {PHI:.5}");
    println!("  σ(h) = √(π²/6ln²2+1/12) = {SIGMA_H:.5}");
    println!(
        "requirement ±{:.0}% at {:.0}% confidence:",
        accuracy.epsilon() * 100.0,
        (1.0 - accuracy.delta()) * 100.0
    );
    println!("  quantile c    = {:.4}", accuracy.quantile());
    println!("  PET rounds m  = {} (Eq. 20)", accuracy.pet_rounds());
    println!(
        "  PET slots     = {} (5 per round at H = 32)",
        accuracy.pet_rounds() * 5
    );
    Ok(())
}

/// `pet lane`: report which SIMD lane the bulk hashing / counting kernels
/// run on. `detected` is the raw CPU capability; `active` additionally
/// honors a `PET_FORCE_LANE` override. CI greps this output to catch a
/// build that silently falls back to scalar on an AVX2-capable host.
fn cmd_lane(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["telemetry"])?;
    println!("detected: {}", pet_hash::simd::detected_lane().as_str());
    println!("active  : {}", pet_hash::simd::active_lane().as_str());
    match std::env::var("PET_FORCE_LANE") {
        Ok(v) => println!("forced  : {v} (via PET_FORCE_LANE)"),
        Err(_) => println!("forced  : none"),
    }
    Ok(())
}

/// Parses `--phy NAME` into a profile, `None` when the flag is absent.
fn phy_from(args: &Args) -> Result<Option<PhyProfile>, ArgError> {
    match args.get("phy") {
        None => Ok(None),
        Some(name) => PhyProfile::named(name)
            .map(Some)
            .ok_or_else(|| ArgError(format!("unknown PHY profile {name:?} (gen2)"))),
    }
}

fn print_phy(r: &pet_phy::PhyReport) {
    println!(
        "phy wall time : {:.1} ms   energy: {:.0} µJ (reader TX {:.0} / RX {:.0} / tags {:.0})",
        r.wall_ms, r.energy_uj, r.reader_tx_uj, r.reader_rx_uj, r.tag_uj
    );
}

fn print_costs(m: &pet_phy::AirMetrics) {
    println!(
        "air cost      : {} slots ({} idle / {} singleton / {} collision)",
        m.slots, m.idle, m.singleton, m.collision
    );
    println!(
        "command bits  : {}   tag responses: {}",
        m.command_bits, m.tag_responses
    );
    println!(
        "est. air time : {:.2} s (Gen2 model)",
        TimeModel::gen2().elapsed(m).as_secs_f64()
    );
}

fn pet_hash_family() -> pet_hash::family::AnyFamily {
    pet_hash::family::AnyFamily::default()
}

#[cfg(test)]
mod cli_tests {
    use super::run;

    fn exec(tokens: &[&str]) -> Result<(), super::ArgError> {
        let argv: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        run(&argv)
    }

    #[test]
    fn estimate_all_protocols() {
        for proto in ["pet", "fneb", "lof", "ezb", "fsa"] {
            exec(&[
                "estimate",
                "--tags",
                "500",
                "--protocol",
                proto,
                "--rounds",
                "16",
                "--seed",
                "1",
            ])
            .unwrap_or_else(|e| panic!("{proto}: {e}"));
        }
    }

    #[test]
    fn estimate_phy_profile() {
        // Every protocol accepts the profile; PET threads it through the
        // config, baselines fold it over their metrics.
        for proto in ["pet", "fsa"] {
            exec(&[
                "estimate",
                "--tags",
                "300",
                "--protocol",
                proto,
                "--rounds",
                "8",
                "--phy",
                "gen2",
            ])
            .unwrap_or_else(|e| panic!("{proto}: {e}"));
        }
        assert!(exec(&["estimate", "--tags", "300", "--phy", "lte"]).is_err());
    }

    #[test]
    fn estimate_variants() {
        exec(&["estimate", "--tags", "300", "--linear", "--rounds", "8"]).unwrap();
        exec(&[
            "estimate",
            "--tags",
            "300",
            "--adaptive",
            "--epsilon",
            "0.3",
            "--delta",
            "0.3",
        ])
        .unwrap();
    }

    #[test]
    fn identify_both_protocols() {
        exec(&["identify", "--tags", "200", "--protocol", "aloha"]).unwrap();
        exec(&["identify", "--tags", "200", "--protocol", "treewalk"]).unwrap();
        exec(&["identify", "--tags", "0"]).unwrap();
    }

    #[test]
    fn compare_monitor_tree_trace_info() {
        exec(&[
            "compare",
            "--tags",
            "1000",
            "--epsilon",
            "0.3",
            "--delta",
            "0.3",
        ])
        .unwrap();
        exec(&[
            "monitor",
            "--expected",
            "500",
            "--present",
            "400",
            "--alpha",
            "0.05",
        ])
        .unwrap();
        exec(&["tree", "--tags", "4", "--path", "0011"]).unwrap();
        exec(&["tree", "--tags", "8", "--height", "5"]).unwrap();
        exec(&["trace", "--tags", "16", "--height", "6", "--rounds", "2"]).unwrap();
        exec(&[
            "trace", "--tags", "16", "--height", "6", "--linear", "--rounds", "1",
        ])
        .unwrap();
        exec(&["info"]).unwrap();
        exec(&["info", "--epsilon", "0.1", "--delta", "0.1"]).unwrap();
        exec(&["lane"]).unwrap();
        assert!(
            exec(&["lane", "--tags", "4"]).is_err(),
            "lane takes no flags"
        );
    }

    /// The streaming monitor mode: `--tags` routes to the windowed
    /// estimation loop while the legacy `--expected/--present` z-test path
    /// keeps working (pinned in `compare_monitor_tree_trace_info`).
    #[test]
    fn monitor_streaming_mode() {
        exec(&[
            "monitor",
            "--tags",
            "400",
            "--updates",
            "5",
            "--window",
            "2",
            "--rounds",
            "8",
            "--churn-rate",
            "3",
            "--burst-at",
            "3",
            "--burst-size",
            "250",
            "--seed",
            "7",
        ])
        .unwrap();
        // Mixing the two modes is a flag error, not a silent fallback.
        assert!(exec(&["monitor", "--tags", "400", "--expected", "500"]).is_err());
        // Stream-mode validation comes from pet-core: window > updates
        // still builds (window caps the fold), but zero rounds must fail.
        assert!(exec(&["monitor", "--tags", "400", "--rounds", "0"]).is_err());
    }

    /// One end-to-end telemetry loop: stream a run to JSONL, read it back
    /// with the `telemetry` command, and check the events parse into the
    /// expected aggregates. Single test — the pet-obs sink handle is
    /// process-global.
    #[test]
    fn telemetry_round_trips_through_jsonl() {
        let path = std::env::temp_dir().join(format!("pet-cli-tel-{}.jsonl", std::process::id()));
        let path_str = path.to_str().expect("utf-8 temp path");
        exec(&[
            "estimate",
            "--tags",
            "400",
            "--rounds",
            "16",
            "--seed",
            "3",
            "--telemetry",
            path_str,
        ])
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut summary = pet_obs::Summary::default();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            summary.accumulate(&pet_obs::Event::parse_jsonl(line).unwrap());
        }
        // `>=`: the sink is process-global, so concurrently running CLI
        // tests may stream extra rounds into the same file.
        assert!(summary.counter("core.rounds") >= 16);
        assert!(summary.counter("core.round.slots") >= 16 * 5);
        assert!(
            summary.span_stats("core.round").is_some(),
            "round spans present"
        );
        // The summarize command accepts the same file.
        exec(&["telemetry", "--file", path_str]).unwrap();
        assert!(exec(&["telemetry", "--file", "/nonexistent/x.jsonl"]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn estimate_lossy_channel_and_mitigations() {
        exec(&[
            "estimate", "--tags", "300", "--rounds", "16", "--miss", "0.05", "--probes", "2",
        ])
        .unwrap();
        exec(&[
            "estimate",
            "--tags",
            "300",
            "--rounds",
            "16",
            "--miss",
            "0.03",
            "--false-busy",
            "0.01",
            "--trim",
            "2",
        ])
        .unwrap();
        // Baselines run over the lossy channel too, but mitigations are
        // PET-specific.
        exec(&[
            "estimate",
            "--tags",
            "300",
            "--rounds",
            "8",
            "--protocol",
            "lof",
            "--miss",
            "0.05",
        ])
        .unwrap();
        assert!(exec(&[
            "estimate",
            "--tags",
            "300",
            "--protocol",
            "lof",
            "--probes",
            "1",
        ])
        .is_err());
        assert!(
            exec(&["estimate", "--tags", "300", "--probes", "1", "--trim", "2"]).is_err(),
            "exclusive mitigations"
        );
        assert!(
            exec(&["estimate", "--tags", "300", "--miss", "1.5"]).is_err(),
            "probability range"
        );
    }

    #[test]
    fn robustness_sweep_writes_csv_and_svg() {
        let out = std::env::temp_dir().join(format!("pet-cli-rob-{}", std::process::id()));
        let out_str = out.to_str().expect("utf-8 temp path");
        exec(&[
            "robustness",
            "--tags",
            "400",
            "--rounds",
            "12",
            "--runs",
            "4",
            "--miss",
            "0,0.1",
            "--out",
            out_str,
        ])
        .unwrap();
        let csv = std::fs::read_to_string(out.join("robustness.csv")).unwrap();
        assert!(csv.starts_with("miss,false_busy,mitigated"));
        assert_eq!(csv.lines().count(), 1 + 4, "2 miss rates × 2 variants");
        let svg = std::fs::read_to_string(out.join("svg").join("robustness.svg")).unwrap();
        assert!(svg.contains("re-probed"));
        assert!(exec(&["robustness", "--miss", "nope", "--out", out_str]).is_err());
        std::fs::remove_dir_all(&out).ok();
    }

    /// Closed-loop load against an in-process server: every reply
    /// validated, digests compared across two runs, non-zero exit when
    /// anything is lost or malformed. Runs once per serving backend.
    #[test]
    fn loadgen_local_verifies_determinism() {
        for backend in ["threaded", "evented"] {
            exec(&[
                "loadgen",
                "--local",
                "--backend",
                backend,
                "--requests",
                "300",
                "--connections",
                "4",
                "--threads",
                "4",
                "--pipeline",
                "4",
                "--tags",
                "150",
                "--rounds",
                "4",
                "--verify-deterministic",
            ])
            .unwrap();
        }
        assert!(exec(&["loadgen"]).is_err(), "needs --addr or --local");
        assert!(exec(&["loadgen", "--local", "--requests", "0"]).is_err());
        assert!(exec(&["loadgen", "--local", "--pipeline", "0"]).is_err());
        assert!(exec(&["loadgen", "--local", "--backend", "fibers"]).is_err());
        assert!(exec(&["loadgen", "--local", "--addr", "127.0.0.1:1"]).is_err());
        assert!(exec(&["loadgen", "--addr", "not-an-addr"]).is_err());
    }

    /// `pet serve` blocks until the shutdown verb, publishing its
    /// ephemeral port through --addr-file.
    fn serve_runs_until_shutdown_verb(backend: &str) {
        let path =
            std::env::temp_dir().join(format!("pet-cli-addr-{}-{backend}.txt", std::process::id()));
        let path_str = path.to_str().expect("utf-8 temp path").to_string();
        let argv: Vec<String> = [
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--backend",
            backend,
            "--deterministic",
            "--workers",
            "2",
            "--addr-file",
            &path_str,
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let server = std::thread::spawn(move || super::run(&argv));

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Ok(addr) = text.trim().parse::<std::net::SocketAddr>() {
                    break addr;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "addr file never appeared"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let mut client = pet_server::Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        let reply = client
            .roundtrip(r#"{"id":"r1","verb":"estimate","tags":300,"rounds":4}"#)
            .unwrap();
        assert!(reply.contains("\"ok\":true"), "{reply}");
        let ack = client
            .roundtrip(r#"{"id":"bye","verb":"shutdown"}"#)
            .unwrap();
        assert!(ack.contains("\"drained\":true"), "{ack}");
        server
            .join()
            .expect("serve thread")
            .expect("serve exits ok");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_threaded_runs_until_shutdown_verb() {
        serve_runs_until_shutdown_verb("threaded");
    }

    #[test]
    fn serve_evented_runs_until_shutdown_verb() {
        serve_runs_until_shutdown_verb("evented");
    }

    #[test]
    fn errors_surface_cleanly() {
        assert!(exec(&["bogus"]).is_err());
        assert!(exec(&["estimate"]).is_err(), "missing --tags");
        assert!(
            exec(&["estimate", "--tags", "10", "--telemetry"]).is_err(),
            "bare --telemetry must not write a file named `true`"
        );
        assert!(exec(&["estimate", "--tags", "10", "--frobnicate"]).is_err());
        assert!(exec(&["estimate", "--tags", "10", "--protocol", "upx"]).is_err());
        assert!(exec(&["tree", "--tags", "4", "--height", "9"]).is_err());
        assert!(
            exec(&["tree", "--tags", "4", "--path", "01"]).is_err(),
            "path width"
        );
        assert!(exec(&["monitor", "--expected", "0", "--present", "1"]).is_err());
    }
}
