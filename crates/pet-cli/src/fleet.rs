//! `pet fleet` — drive a distributed multi-reader estimation from the
//! shell.
//!
//! Agents are either spawned in-process on ephemeral ports (`--spawn N`,
//! the one-machine drill) or addressed remotely (`--agents host:port,…`).
//! Any reader targeted by a fault flag is automatically wrapped in a
//! wire-level fault proxy, so kill/stall/drop drills work against both
//! kinds of agent. The final line prints a deterministic digest of the
//! merged estimate — two runs with the same seeds must print the same
//! digest, which the CI fleet smoke asserts.

use crate::args::{ArgError, Args};
use pet_bench::ledger;
use pet_core::config::PetConfig;
use pet_fleet::{
    Coordinator, FaultAction, FaultEvent, FaultProxy, FleetConfig, FleetReport, FleetSpec,
    RetryPolicy,
};
use pet_phy::channel::{ChannelModel, LossyChannel};
use pet_server::{serve, ServerConfig, ServerHandle};
use pet_stats::accuracy::Accuracy;
use std::time::Duration;

/// `pet fleet (--spawn N | --agents H:P,…) [--tags 10000] [--zones Z]
/// [--deploy-seed 7] [--coverage 0,1;1,2;…] [--rounds 64] [--seed 42]
/// [--quorum 1] [--deadline-ms 2000] [--dead-after 2] [--miss P]
/// [--kill R@ROUND,…] [--stall R@ROUND:MS,…] [--drop R@ROUND,…]
/// [--restore R@ROUND,…] [--shutdown-agents] [--bench-json path]`
pub fn cmd_fleet(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "spawn",
        "backend",
        "agents",
        "tags",
        "zones",
        "deploy-seed",
        "coverage",
        "rounds",
        "seed",
        "epsilon",
        "delta",
        "quorum",
        "deadline-ms",
        "dead-after",
        "miss",
        "kill",
        "stall",
        "drop",
        "restore",
        "shutdown-agents",
        "bench-json",
        "phy",
        "telemetry",
    ])?;

    // --- Fleet shape -------------------------------------------------------
    let spawned: Option<Vec<ServerHandle>> = match (args.get("spawn"), args.get("agents")) {
        (Some(_), Some(_)) => return Err(ArgError("--spawn and --agents are exclusive".into())),
        (None, None) => return Err(ArgError("fleet needs --spawn N or --agents H:P,…".into())),
        (Some(_), None) => {
            let n: usize = args.require("spawn")?;
            if n == 0 {
                return Err(ArgError("--spawn must be positive".into()));
            }
            let backend = crate::serve::parse_backend(args)?;
            Some(
                (0..n)
                    .map(|_| {
                        serve(&ServerConfig {
                            backend,
                            ..ServerConfig::default()
                        })
                        .map_err(|e| ArgError(format!("spawn agent: {e}")))
                    })
                    .collect::<Result<_, _>>()?,
            )
        }
        (None, Some(_)) => None,
    };
    let mut agents: Vec<String> = match (&spawned, args.get("agents")) {
        (Some(handles), _) => handles.iter().map(|h| h.addr().to_string()).collect(),
        (None, Some(list)) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect(),
        (None, None) => unreachable!("checked above"),
    };
    if agents.is_empty() {
        return Err(ArgError("--agents lists no addresses".into()));
    }
    let readers = agents.len();

    let coverages: Vec<Vec<u32>> = match args.get("coverage") {
        Some(raw) => parse_coverages(raw)?,
        // Default: one private zone per reader.
        None => (0..readers).map(|i| vec![i as u32]).collect(),
    };
    if coverages.len() != readers {
        return Err(ArgError(format!(
            "--coverage lists {} readers but the fleet has {readers}",
            coverages.len()
        )));
    }
    let max_zone = coverages.iter().flatten().copied().max().unwrap_or(0);
    let zones: u32 = args.get_or("zones", max_zone + 1)?;

    let spec = FleetSpec {
        tags: args.get_or("tags", 10_000)?,
        zones,
        deploy_seed: args.get_or("deploy-seed", 7)?,
        coverages,
    };

    // --- Session config ----------------------------------------------------
    let epsilon: f64 = args.get_or("epsilon", 0.05)?;
    let delta: f64 = args.get_or("delta", 0.01)?;
    let accuracy = Accuracy::new(epsilon, delta).map_err(|e| ArgError(e.to_string()))?;
    let pet = PetConfig::builder()
        .accuracy(accuracy)
        .phy(crate::phy_from(args)?)
        .build()
        .map_err(|e| ArgError(e.to_string()))?;
    let mut config = FleetConfig::new(pet, args.get_or("rounds", 64)?, args.get_or("seed", 42)?);
    config.quorum = args.get_or("quorum", 1)?;
    config.round_deadline = Duration::from_millis(args.get_or("deadline-ms", 2_000)?);
    config.retry = RetryPolicy {
        dead_after: args.get_or("dead-after", RetryPolicy::default().dead_after)?,
        ..RetryPolicy::default()
    };
    let miss: f64 = args.get_or("miss", 0.0)?;
    if miss > 0.0 {
        let lossy = LossyChannel::new(miss, 0.0).map_err(|e| ArgError(e.to_string()))?;
        config.channel = ChannelModel::Lossy(lossy);
    }
    config.faults = parse_faults(args)?;

    // --- Fault proxies for targeted readers --------------------------------
    let mut proxies: Vec<(usize, FaultProxy)> = Vec::new();
    for f in &config.faults {
        if f.reader >= readers {
            return Err(ArgError(format!(
                "fault targets reader {} of a {readers}-reader fleet",
                f.reader
            )));
        }
        if proxies.iter().all(|(i, _)| *i != f.reader) {
            let upstream = agents[f.reader]
                .parse()
                .map_err(|_| ArgError(format!("cannot parse address {:?}", agents[f.reader])))?;
            let proxy =
                FaultProxy::spawn(upstream).map_err(|e| ArgError(format!("fault proxy: {e}")))?;
            agents[f.reader] = proxy.addr().to_string();
            proxies.push((f.reader, proxy));
        }
    }

    // --- Run ---------------------------------------------------------------
    let mut coord =
        Coordinator::new(spec.clone(), config, &agents).map_err(|e| ArgError(e.to_string()))?;
    for (reader, proxy) in &proxies {
        coord.set_control(*reader, proxy.control());
    }
    let outcome = coord.run();

    if args.switch("shutdown-agents") {
        coord.shutdown_agents();
    }
    if let Some(handles) = spawned {
        for h in &handles {
            h.shutdown();
        }
        for h in handles {
            h.join();
        }
    }

    let report = outcome.map_err(|e| ArgError(e.to_string()))?;
    print_fleet_report(&spec, &report);
    if let Some(path) = args.get("bench-json") {
        let json = write_fleet_bench_json(path, &spec, &report)
            .map_err(|e| ArgError(format!("--bench-json {path}: {e}")))?;
        println!("bench json     : {path}");
        // Mirror the snapshot into the append-only perf ledger beside it
        // (same adapter `pet bench record --from` would use).
        let ledger_path = std::path::Path::new(path)
            .parent()
            .unwrap_or_else(|| std::path::Path::new("."))
            .join("ledger.jsonl");
        let rows =
            ledger::migrate::sniff_snapshot(&json, "pet:fleet", Some(&ledger::current_commit()))
                .map_err(ArgError)?;
        ledger::append(&ledger_path, &rows)
            .map_err(|e| ArgError(format!("{}: {e}", ledger_path.display())))?;
        println!("ledger         : {}", ledger_path.display());
    }
    Ok(())
}

fn print_fleet_report(spec: &FleetSpec, r: &FleetReport) {
    println!(
        "fleet estimate : {:.1} tags ({} readers over {} zones, {} true)",
        r.estimate,
        spec.reader_count(),
        spec.zones,
        spec.tags
    );
    println!(
        "rounds         : {} (full {}, partial {})",
        r.rounds, r.full_rounds, r.partial_rounds
    );
    println!(
        "controller     : {} slots, mean prefix {:.3}",
        r.controller_slots, r.mean_prefix_len
    );
    println!(
        "coverage       : {:.3} effective over {} covered tags{}",
        r.effective_coverage,
        r.covered_tags,
        if r.degraded { "  [DEGRADED]" } else { "" }
    );
    for (i, s) in r.readers.iter().enumerate() {
        println!(
            "reader {i:<2}      : ok {}, missed {}, retries {}{}",
            s.ok_rounds,
            s.missed_rounds,
            s.retries,
            if s.dead { ", DEAD" } else { "" }
        );
    }
    if let Some(span) = r.telemetry.span_stats("fleet.round") {
        println!(
            "round latency  : mean {:.3} ms, p95 ≤ {:.3} ms",
            span.mean_nanos() / 1e6,
            span.histogram.quantile_bound(0.95).unwrap_or(0) as f64 / 1e6
        );
    }
    if let Some(p) = r.phy {
        println!(
            "phy (gen2)     : {:.1} ms on air, {:.0} µJ total ({:.0} µJ on tags)",
            p.wall_ms, p.energy_uj, p.tag_uj
        );
    }
    println!("fleet digest   : {:#018x}", r.digest());
}

/// The machine-readable artifact for fleet drills: merged-estimate digest,
/// coverage, and round-latency tail from the coordinator's histogram.
fn write_fleet_bench_json(
    path: &str,
    spec: &FleetSpec,
    r: &FleetReport,
) -> std::io::Result<String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let span = r.telemetry.span_stats("fleet.round");
    let (mean_ns, p95_ns, max_ns) = span.map_or((0.0, 0, 0), |s| {
        (
            s.mean_nanos(),
            s.histogram.quantile_bound(0.95).unwrap_or(0),
            s.histogram.max().unwrap_or(0),
        )
    });
    let json = format!(
        concat!(
            "{{\"benchmark\":\"pet-fleet\",",
            "\"readers\":{},\"tags\":{},\"zones\":{},\"rounds\":{},",
            "\"estimate\":{:.3},\"effective_coverage\":{:.6},",
            "\"full_rounds\":{},\"partial_rounds\":{},\"degraded\":{},",
            "\"round_latency_ns\":{{\"mean\":{:.0},\"p95_bound\":{},\"max\":{}}},",
            "\"digest\":\"{:#018x}\"}}\n"
        ),
        spec.reader_count(),
        spec.tags,
        spec.zones,
        r.rounds,
        r.estimate,
        r.effective_coverage,
        r.full_rounds,
        r.partial_rounds,
        r.degraded,
        mean_ns,
        p95_ns,
        max_ns,
        r.digest(),
    );
    std::fs::write(path, &json)?;
    Ok(json)
}

/// `0,1;1,2;3` → one zone list per reader.
fn parse_coverages(raw: &str) -> Result<Vec<Vec<u32>>, ArgError> {
    raw.split(';')
        .map(|group| {
            let zones: Result<Vec<u32>, _> = group
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|z| {
                    z.parse::<u32>()
                        .map_err(|_| ArgError(format!("--coverage: bad zone {z:?}")))
                })
                .collect();
            let zones = zones?;
            if zones.is_empty() {
                return Err(ArgError("--coverage: empty reader group".into()));
            }
            Ok(zones)
        })
        .collect()
}

/// `--kill 2@8,0@12` / `--stall 1@4:5000` / `--drop 1@2` / `--restore 1@6`.
fn parse_faults(args: &Args) -> Result<Vec<FaultEvent>, ArgError> {
    let mut faults = Vec::new();
    for (flag, make) in [
        ("kill", None),
        ("drop", Some(FaultAction::DropReplies)),
        ("restore", Some(FaultAction::Restore)),
    ] {
        let Some(raw) = args.get(flag) else { continue };
        for entry in raw.split(',').filter(|s| !s.is_empty()) {
            let (reader, round) = parse_reader_at_round(flag, entry)?;
            faults.push(FaultEvent {
                round,
                reader,
                action: make.unwrap_or(FaultAction::Kill),
            });
        }
    }
    if let Some(raw) = args.get("stall") {
        for entry in raw.split(',').filter(|s| !s.is_empty()) {
            let (spec, ms) = entry
                .split_once(':')
                .ok_or_else(|| ArgError(format!("--stall: {entry:?} needs R@ROUND:MS")))?;
            let (reader, round) = parse_reader_at_round("stall", spec)?;
            let ms: u64 = ms
                .parse()
                .map_err(|_| ArgError(format!("--stall: bad milliseconds {ms:?}")))?;
            faults.push(FaultEvent {
                round,
                reader,
                action: FaultAction::Stall(Duration::from_millis(ms)),
            });
        }
    }
    Ok(faults)
}

fn parse_reader_at_round(flag: &str, entry: &str) -> Result<(usize, u32), ArgError> {
    let (reader, round) = entry
        .split_once('@')
        .ok_or_else(|| ArgError(format!("--{flag}: {entry:?} needs READER@ROUND")))?;
    let reader = reader
        .trim()
        .parse()
        .map_err(|_| ArgError(format!("--{flag}: bad reader {reader:?}")))?;
    let round = round
        .trim()
        .parse()
        .map_err(|_| ArgError(format!("--{flag}: bad round {round:?}")))?;
    Ok((reader, round))
}
