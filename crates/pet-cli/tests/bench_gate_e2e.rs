//! End-to-end exercise of `pet bench` in subprocesses: record a snapshot
//! into a temp ledger twice, gate the identical runs (must pass), then
//! gate against a synthetic −15% regression (must fail with exit 1 and a
//! machine-readable verdict). Everything happens under a temp dir —
//! `results/ledger.jsonl` in the repo is never touched.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pet-bench-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn pet(args: &[&str], cwd: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pet"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn pet")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A deterministic kernel snapshot standing in for a live measurement.
const SNAPSHOT: &str = r#"{"n": 100000, "lane": "avx2", "commit": "aaaaaaa",
 "rounds_per_sec_oracle": 2900000.0, "rounds_per_sec_kernel": 9600000.0,
 "rounds_per_sec_kernel_simd": 10000000.0,
 "hash_elems_per_sec_scalar": 310000000.0, "hash_elems_per_sec_simd": 1190000000.0}"#;

#[test]
fn record_twice_then_gate_passes_and_synthetic_regression_fails() {
    let dir = tmp_dir();
    std::fs::write(dir.join("snap.json"), SNAPSHOT).unwrap();
    let ledger = dir.join("ledger.jsonl");
    let ledger = ledger.to_str().unwrap();

    // Record the same snapshot twice under different commits — two honest
    // runs that measured identical numbers.
    let out = pet(
        &[
            "bench",
            "record",
            "--from",
            "snap.json",
            "--ledger",
            ledger,
            "--commit",
            "base001",
        ],
        &dir,
    );
    assert_ok(&out, "first record");
    let out = pet(
        &[
            "bench",
            "record",
            "--from",
            "snap.json",
            "--ledger",
            ledger,
            "--commit",
            "cand001",
        ],
        &dir,
    );
    assert_ok(&out, "second record");
    let rows = std::fs::read_to_string(ledger).unwrap();
    assert_eq!(rows.lines().count(), 2, "two recorded rows:\n{rows}");

    // Baseline = only the first row, in its own file.
    let baseline = dir.join("baseline.jsonl");
    std::fs::write(&baseline, rows.lines().next().unwrap().to_string() + "\n").unwrap();

    // Identical runs: the gate passes and says so in the verdict JSON.
    let verdict = dir.join("verdict.json");
    let out = pet(
        &[
            "bench",
            "gate",
            "--baseline",
            baseline.to_str().unwrap(),
            "--ledger",
            ledger,
            "--threshold",
            "10%",
            "--pin",
            "kernel:rounds_per_sec_kernel_simd",
            "--verdict",
            verdict.to_str().unwrap(),
        ],
        &dir,
    );
    assert_ok(&out, "gate on identical runs");
    let v = std::fs::read_to_string(&verdict).unwrap();
    assert!(v.contains("\"pass\":true"), "verdict: {v}");
    assert!(v.contains("\"status\":\"pass\""), "verdict: {v}");

    // Synthetic −15% on the pinned metric: append a doctored row.
    let regressed = rows
        .lines()
        .next()
        .unwrap()
        .replace(
            "\"rounds_per_sec_kernel_simd\":10000000",
            "\"rounds_per_sec_kernel_simd\":8500000",
        )
        .replace("\"commit\":\"base001\"", "\"commit\":\"bad0001\"");
    assert!(regressed.contains("8500000"), "doctored row: {regressed}");
    let mut with_regression = rows.clone();
    with_regression.push_str(&regressed);
    with_regression.push('\n');
    std::fs::write(dir.join("regressed.jsonl"), with_regression).unwrap();

    let out = pet(
        &[
            "bench",
            "gate",
            "--baseline",
            baseline.to_str().unwrap(),
            "--ledger",
            dir.join("regressed.jsonl").to_str().unwrap(),
            "--threshold",
            "10%",
            "--pin",
            "kernel:rounds_per_sec_kernel_simd",
            "--verdict",
            verdict.to_str().unwrap(),
        ],
        &dir,
    );
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let v = std::fs::read_to_string(&verdict).unwrap();
    assert!(v.contains("\"pass\":false"), "verdict: {v}");
    assert!(v.contains("\"status\":\"regressed\""), "verdict: {v}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("REGRESSED"),
        "human rendering names the regression"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn migrate_report_round_trip_in_temp_results() {
    let dir = tmp_dir();
    let results = dir.join("results");
    std::fs::create_dir_all(&results).unwrap();
    std::fs::write(results.join("BENCH_kernel.json"), SNAPSHOT).unwrap();
    std::fs::write(
        results.join("BENCH_fleet.json"),
        r#"{"benchmark":"pet-fleet","readers":3,"tags":5000,"zones":3,"rounds":32,
           "estimate":5039.0,"effective_coverage":0.8351,"full_rounds":16,"partial_rounds":16,
           "degraded":true,"round_latency_ns":{"mean":2355944,"p95_bound":33554431,"max":31391405},
           "digest":"0x0"}"#,
    )
    .unwrap();
    let ledger = dir.join("ledger.jsonl");
    let ledger_s = ledger.to_str().unwrap();

    let out = pet(
        &[
            "bench",
            "migrate",
            "--results",
            results.to_str().unwrap(),
            "--ledger",
            ledger_s,
        ],
        &dir,
    );
    assert_ok(&out, "migrate");
    // Idempotent: a second migrate appends nothing.
    let before = std::fs::read_to_string(&ledger).unwrap();
    let out = pet(
        &[
            "bench",
            "migrate",
            "--results",
            results.to_str().unwrap(),
            "--ledger",
            ledger_s,
        ],
        &dir,
    );
    assert_ok(&out, "second migrate");
    assert_eq!(std::fs::read_to_string(&ledger).unwrap(), before);
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("0 row(s) appended"),
        "second migrate reports dedupe"
    );

    let out_dir = dir.join("report");
    let out = pet(
        &[
            "bench",
            "report",
            "--ledger",
            ledger_s,
            "--out",
            out_dir.to_str().unwrap(),
        ],
        &dir,
    );
    assert_ok(&out, "report");
    let csv = std::fs::read_to_string(out_dir.join("trends.csv")).unwrap();
    assert!(csv.starts_with("bench,config,metric,seq,commit,timestamp_s,value"));
    assert!(csv.contains("kernel,n=100000/lane=avx2,rounds_per_sec_kernel_simd,0,aaaaaaa"));
    assert!(csv.contains("fleet,r3/z3/t5000,round_latency_mean_ns"));
    assert!(out_dir.join("svg/trend_kernel.svg").is_file());
    assert!(out_dir.join("svg/trend_fleet.svg").is_file());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gate_with_unknown_flags_or_actions_reports_usage_errors() {
    let dir = tmp_dir();
    let out = pet(&["bench", "frobnicate"], &dir);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown bench action"));
    let out = pet(&["bench", "gate"], &dir);
    assert_eq!(
        out.status.code(),
        Some(2),
        "missing --baseline is a usage error"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
