//! Seed-replay regression: a lossy `pet estimate --telemetry` run streams a
//! JSONL event log that (a) parses back through the `pet telemetry` command,
//! (b) carries slot-outcome counters consistent with each other, and (c)
//! matches the air metrics of an in-process library run of the same seed.
//!
//! Runs the real binary in subprocesses (`CARGO_BIN_EXE_pet`) because the
//! pet-obs sink handle is process-global: installing a sink inside this test
//! process would race with the CLI's own unit tests.

use pet_core::config::{Backend, Mitigation, PetConfig};
use pet_core::front::Estimator;
use pet_phy::channel::{ChannelModel, LossyChannel};
use pet_stats::accuracy::Accuracy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::Command;

const TAGS: usize = 600;
const ROUNDS: u32 = 48;
const SEED: u64 = 0xFA11;
const MISS: f64 = 0.08;
const FALSE_BUSY: f64 = 0.01;
const PROBES: u32 = 1;

fn pet(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pet"))
        .args(args)
        .output()
        .expect("spawn pet binary")
}

fn lossy_estimate_args(telemetry: &str) -> Vec<String> {
    [
        "estimate",
        "--tags",
        &TAGS.to_string(),
        "--rounds",
        &ROUNDS.to_string(),
        "--seed",
        &SEED.to_string(),
        "--miss",
        &MISS.to_string(),
        "--false-busy",
        &FALSE_BUSY.to_string(),
        "--probes",
        &PROBES.to_string(),
        "--telemetry",
        telemetry,
    ]
    .iter()
    .map(ToString::to_string)
    .collect()
}

#[test]
fn lossy_telemetry_replays_against_library_run() {
    let path = std::env::temp_dir().join(format!("pet-replay-{}.jsonl", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    let args = lossy_estimate_args(path_str);
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();

    let out = pet(&argv);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");

    // Same seed, same channel, fresh process: bit-identical report.
    let replay = pet(&argv);
    assert!(replay.status.success());
    assert_eq!(
        stdout,
        String::from_utf8(replay.stdout).expect("utf-8 stdout"),
        "seeded lossy runs must replay bit-for-bit"
    );

    // The event stream parses and its slot-outcome counters are internally
    // consistent: idle + singleton + collision = total slots.
    let text = std::fs::read_to_string(&path).expect("telemetry file written");
    let mut summary = pet_obs::Summary::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event =
            pet_obs::Event::parse_jsonl(line).unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
        summary.accumulate(&event);
    }
    assert_eq!(summary.counter("core.rounds"), u64::from(ROUNDS));
    let slots = summary.counter("core.round.slots");
    let idle = summary.counter("core.round.slots.idle");
    let singleton = summary.counter("core.round.slots.singleton");
    let collision = summary.counter("core.round.slots.collision");
    assert!(slots > 0, "lossy run recorded no slots");
    assert_eq!(idle + singleton + collision, slots);

    // An in-process run of the identical configuration reproduces the
    // streamed totals exactly — the telemetry is a faithful transcript.
    let config = PetConfig::builder()
        .accuracy(Accuracy::new(0.05, 0.01).expect("valid accuracy"))
        .backend(Backend::Kernel)
        .channel(ChannelModel::Lossy(
            LossyChannel::new(MISS, FALSE_BUSY).expect("valid probabilities"),
        ))
        .mitigation(Mitigation::ReProbe { probes: PROBES })
        .build()
        .expect("valid config");
    let keys: Vec<u64> = (0..TAGS as u64).collect();
    let mut rng = StdRng::seed_from_u64(SEED);
    let report = Estimator::new(config)
        .try_estimate_keys_rounds(&keys, ROUNDS, &mut rng)
        .expect("library run succeeds");
    assert_eq!(report.metrics.slots, slots);
    assert_eq!(report.metrics.idle, idle);
    assert_eq!(report.metrics.singleton, singleton);
    assert_eq!(report.metrics.collision, collision);
    assert!(
        stdout.contains(&format!("{:.0}", report.estimate)),
        "CLI printed a different estimate than the library replay:\n{stdout}"
    );

    // The summarize command accepts the stream it wrote.
    let tel = pet(&["telemetry", "--file", path_str]);
    assert!(tel.status.success());
    let tel_out = String::from_utf8_lossy(&tel.stdout).into_owned();
    assert!(
        tel_out.contains("core.round.slots"),
        "summary should mention slot counters:\n{tel_out}"
    );
    std::fs::remove_file(&path).ok();
}
