//! The wire protocol: one JSON object per line, request in, reply out.
//!
//! Requests:
//!
//! ```text
//! {"id":"r1","verb":"estimate","tags":5000}
//! {"id":"r2","verb":"estimate","tags":5000,"rounds":32,"seed":7,
//!  "epsilon":0.05,"delta":0.01,"backend":"oracle",
//!  "miss":0.02,"false_busy":0.001,"probes":2,"deadline_ms":250}
//! {"id":"r3","verb":"robustness","tags":500,"rounds":16,"runs":4,
//!  "miss_rates":[0,0.05],"probes":2}
//! {"id":"r4","verb":"telemetry-snapshot"}
//! {"id":"r5","verb":"shutdown"}
//! {"id":"r6","verb":"reader-round","tags":4000,"zones":4,"deploy_seed":"b",
//!  "coverage":[0,1],"height":32,"manufacture_seed":"2a","path":"9f3c11e2"}
//! {"id":"r7","verb":"monitor","tags":2000,"updates":8,"window":4,
//!  "rounds":32,"churn_rate":20,"burst_at":5,"burst_size":600,
//!  "alarm_fraction":0.7,"seed":"2a"}
//! ```
//!
//! `reader-round` is the fleet agent verb: the server reconstructs its zone
//! shard deterministically from `(tags, zones, deploy_seed, coverage)` —
//! the derivation shared with `pet_sim::multireader::shard_keys` — and
//! answers with the raw responder count for **every** prefix length
//! `1..=height` of the announced estimating path, plus its shard
//! population. `u64`-valued wire fields (`path`, `deploy_seed`,
//! `manufacture_seed`, `round_seed`) travel as hex *strings* because JSON
//! numbers here are doubles and cannot carry more than 53 bits.
//!
//! Replies always echo the request `id` and carry `"ok"`:
//!
//! ```text
//! {"id":"r1","ok":true,"verb":"estimate","estimate":4993.2,...}
//! {"id":"r9","ok":false,"error":"overloaded"}
//! ```
//!
//! Error codes are closed-vocabulary (`bad_request`, `overloaded`,
//! `deadline_exceeded`, `shutting_down`, `internal`), so clients can branch
//! on them without string matching on prose; the human-readable cause rides
//! in `"detail"`. A request that cannot even be parsed far enough to
//! recover an `id` is answered with `"id":null` — the connection always
//! produces at least one reply line per request line, and exactly one for
//! every verb except `monitor`, whose single reply is a bounded *stream*:
//! one `"verb":"monitor-delta"` line per update followed by a final
//! `"verb":"monitor"` summary line, every line echoing the request `id`.

use crate::json::{escape, Json};
use pet_core::config::{Backend, Mitigation, PetConfig};
use pet_phy::channel::{ChannelModel, LossyChannel};
use pet_phy::PhyProfile;
use pet_stats::accuracy::Accuracy;
use std::fmt;
use std::time::Duration;

/// Upper bound on `tags` a single request may ask for (10⁷ keeps one
/// request's memory in the tens of MB and a worker busy for well under a
/// second on the kernel backend).
pub const MAX_TAGS: usize = 10_000_000;

/// Upper bound on `rounds` per request.
pub const MAX_ROUNDS: u32 = 1_000_000;

/// Upper bound on robustness `runs` per request (each run is a full
/// estimation; the sweep multiplies by `miss_rates × 2`).
pub const MAX_RUNS: usize = 256;

/// Upper bound on `zones` in a `reader-round` deployment.
pub const MAX_ZONES: u32 = 4_096;

/// Upper bound on `updates` in one `monitor` subscription (each update is
/// a full estimation; the stream carries one delta line per update).
pub const MAX_UPDATES: u32 = 1_000;

/// Upper bound on the total round budget (`updates × rounds`) of one
/// `monitor` subscription — the same ceiling a single `estimate` request
/// may spend.
pub const MAX_MONITOR_ROUNDS: u64 = MAX_ROUNDS as u64;

/// Upper bound on the number of zones one reader's `coverage` may list.
pub const MAX_COVERAGE_ZONES: usize = 256;

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen request id, echoed on the reply.
    pub id: String,
    /// What to do.
    pub verb: Verb,
    /// Server-side deadline measured from enqueue; `None` means no
    /// deadline.
    pub deadline: Option<Duration>,
}

/// The request verbs.
#[derive(Debug, Clone, PartialEq)]
pub enum Verb {
    /// Run one estimation.
    Estimate(EstimateParams),
    /// Run a small robustness sweep (accuracy vs channel fault rates).
    Robustness(RobustnessRequest),
    /// Execute one hash-synchronized estimating round against this agent's
    /// zone shard and report raw responder counts per prefix length.
    ReaderRound(ReaderRoundParams),
    /// Stream a bounded monitoring subscription: periodic re-estimates over
    /// a churning population, one delta line per update plus a summary.
    Monitor(MonitorParams),
    /// Return the server's RED metrics as JSON.
    TelemetrySnapshot,
    /// Drain in-flight work, then stop the server.
    Shutdown,
}

impl Verb {
    /// Wire name of the verb (metrics labels, reply envelopes).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Estimate(_) => "estimate",
            Self::Robustness(_) => "robustness",
            Self::ReaderRound(_) => "reader-round",
            Self::Monitor(_) => "monitor",
            Self::TelemetrySnapshot => "telemetry-snapshot",
            Self::Shutdown => "shutdown",
        }
    }
}

/// Parameters of an `estimate` request.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateParams {
    /// Population size to estimate (the service owns a synthetic
    /// sequential population per §5's methodology).
    pub tags: usize,
    /// Explicit round count; `None` derives Eq. (20) from the accuracy.
    pub rounds: Option<u32>,
    /// Explicit RNG seed; `None` lets the server derive one (from the
    /// request id in deterministic mode).
    pub seed: Option<u64>,
    /// The assembled protocol configuration.
    pub config: PetConfig,
}

/// Parameters of a `monitor` subscription: a bounded stream of periodic
/// re-estimates over a synthetic population churned by a
/// `pet_tags::dynamics::ChurnSchedule`. The `seed` field travels as a hex
/// string like the other full-width `u64` wire fields.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorParams {
    /// Initial population size.
    pub tags: usize,
    /// Number of estimation updates to stream (one delta line each).
    pub updates: u32,
    /// Sliding-window width in updates.
    pub window: usize,
    /// Rounds per update.
    pub rounds: u32,
    /// Alarm when the windowed estimate drops below this fraction of the
    /// reference population.
    pub alarm_fraction: f64,
    /// Tags joining *and* leaving per update (balanced steady churn).
    pub churn_rate: usize,
    /// Update index at which a missing-tag burst strikes.
    pub burst_at: Option<u32>,
    /// Tags lost in the burst.
    pub burst_size: usize,
    /// Explicit base RNG seed; `None` lets the server derive one (from the
    /// request id in deterministic mode).
    pub seed: Option<u64>,
    /// The assembled protocol configuration.
    pub config: PetConfig,
}

/// Parameters of a `robustness` request.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessRequest {
    /// Population size per cell.
    pub tags: usize,
    /// Rounds per trial.
    pub rounds: u32,
    /// Trials per cell.
    pub runs: usize,
    /// Base seed for the sweep.
    pub seed: u64,
    /// Miss probabilities to sweep.
    pub miss_rates: Vec<f64>,
    /// False-busy probability for lossy cells.
    pub false_busy: f64,
    /// Re-probe count for the mitigated variant.
    pub probes: u32,
}

/// Parameters of a `reader-round` request — everything an agent needs to
/// rebuild its zone shard deterministically and answer one estimating
/// round. All `u64`-valued fields travel as hex strings on the wire (JSON
/// numbers are doubles); see [`parse_request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReaderRoundParams {
    /// Total tags in the deployment (the agent sees only its shard).
    pub tags: usize,
    /// Zone count of the deployment field.
    pub zones: u32,
    /// Seed of the deterministic tag→zone scatter.
    pub deploy_seed: u64,
    /// Zones this agent's reader covers.
    pub coverage: Vec<u32>,
    /// PET tree height `H`.
    pub height: u32,
    /// Manufacture-time hashing seed; `None` uses the protocol default.
    pub manufacture_seed: Option<u64>,
    /// The round's estimating path, as raw bits (top `height` bits used).
    pub path_bits: u64,
    /// Per-round hashing seed; `Some` switches the shard to active-tag
    /// mode (codes rebuilt from this seed each round).
    pub round_seed: Option<u64>,
}

/// Closed vocabulary of reply error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was malformed or out of range.
    BadRequest,
    /// The bounded queue was full; retry later.
    Overloaded,
    /// The request's deadline passed before a worker reached it.
    DeadlineExceeded,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The estimation itself failed (should not happen for validated
    /// requests).
    Internal,
}

impl ErrorCode {
    /// Wire form of the code.
    #[must_use]
    pub fn wire(self) -> &'static str {
        match self {
            Self::BadRequest => "bad_request",
            Self::Overloaded => "overloaded",
            Self::DeadlineExceeded => "deadline_exceeded",
            Self::ShuttingDown => "shutting_down",
            Self::Internal => "internal",
        }
    }
}

/// A request parse/validation failure, with the id when one was recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// The request id, when the line parsed far enough to extract it.
    pub id: Option<String>,
    /// Human-readable cause, carried in the reply's `"detail"`.
    pub detail: String,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

impl std::error::Error for RequestError {}

fn bad(id: Option<&str>, detail: impl Into<String>) -> RequestError {
    RequestError {
        id: id.map(str::to_string),
        detail: detail.into(),
    }
}

fn f64_field(obj: &Json, id: &str, key: &str, default: f64) -> Result<f64, RequestError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| bad(Some(id), format!("\"{key}\" must be a number"))),
    }
}

fn u64_field(obj: &Json, id: &str, key: &str) -> Result<Option<u64>, RequestError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            bad(
                Some(id),
                format!("\"{key}\" must be a non-negative integer"),
            )
        }),
    }
}

/// A full-width `u64` wire field: a hex string of 1..=16 digits, or (for
/// convenience with small values) a plain non-negative integer. JSON
/// numbers parse as `f64` here, so values above 2⁵³ *must* take the hex
/// form — path bits and seeds use the full 64-bit range.
fn u64_hex_field(obj: &Json, id: &str, key: &str) -> Result<Option<u64>, RequestError> {
    let complaint =
        || format!("\"{key}\" must be a hex string of 1..=16 digits or a non-negative integer");
    match obj.get(key) {
        None => Ok(None),
        Some(Json::Str(s)) => {
            if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(bad(Some(id), complaint()));
            }
            u64::from_str_radix(s, 16)
                .map(Some)
                .map_err(|_| bad(Some(id), complaint()))
        }
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(Some(id), complaint())),
    }
}

/// Parses and validates one request line.
///
/// # Errors
///
/// Returns [`RequestError`] (carrying the request id when recoverable) for
/// malformed JSON, unknown verbs, out-of-range parameters, or inconsistent
/// knob combinations. Never panics on any input — the fuzz suite pins this.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let root = Json::parse(line).map_err(|e| bad(None, format!("malformed JSON: {e}")))?;
    let Json::Obj(_) = root else {
        return Err(bad(None, "request must be a JSON object"));
    };
    let id = match root.get("id") {
        Some(Json::Str(s)) if !s.is_empty() && s.len() <= 128 => s.clone(),
        Some(Json::Str(_)) => return Err(bad(None, "\"id\" must be 1..=128 characters")),
        Some(_) => return Err(bad(None, "\"id\" must be a string")),
        None => return Err(bad(None, "missing \"id\"")),
    };
    let verb_name = root
        .get("verb")
        .and_then(Json::as_str)
        .ok_or_else(|| bad(Some(&id), "missing or non-string \"verb\""))?;

    let deadline = match u64_field(&root, &id, "deadline_ms")? {
        Some(0) => return Err(bad(Some(&id), "\"deadline_ms\" must be positive")),
        Some(ms) => Some(Duration::from_millis(ms)),
        None => None,
    };

    let verb = match verb_name {
        "estimate" => Verb::Estimate(parse_estimate(&root, &id)?),
        "robustness" => Verb::Robustness(parse_robustness(&root, &id)?),
        "reader-round" => Verb::ReaderRound(parse_reader_round(&root, &id)?),
        "monitor" => Verb::Monitor(parse_monitor(&root, &id)?),
        "telemetry-snapshot" => Verb::TelemetrySnapshot,
        "shutdown" => Verb::Shutdown,
        other => {
            return Err(bad(
                Some(&id),
                format!(
                    "unknown verb {other:?} \
                     (estimate|robustness|reader-round|monitor|telemetry-snapshot|shutdown)"
                ),
            ))
        }
    };
    Ok(Request { id, verb, deadline })
}

fn parse_channel(root: &Json, id: &str) -> Result<ChannelModel, RequestError> {
    let miss = f64_field(root, id, "miss", 0.0)?;
    let false_busy = f64_field(root, id, "false_busy", 0.0)?;
    if miss == 0.0 && false_busy == 0.0 {
        return Ok(ChannelModel::Perfect);
    }
    LossyChannel::new(miss, false_busy)
        .map(ChannelModel::Lossy)
        .map_err(|e| bad(Some(id), e.to_string()))
}

/// Assembles the protocol-configuration knobs shared by the `estimate` and
/// `monitor` verbs: `epsilon`/`delta`, `backend`, the channel model
/// (`miss`/`false_busy`), and the mitigation (`probes` xor `trim`).
fn parse_config(root: &Json, id: &str) -> Result<PetConfig, RequestError> {
    let epsilon = f64_field(root, id, "epsilon", 0.05)?;
    let delta = f64_field(root, id, "delta", 0.01)?;
    let accuracy = Accuracy::new(epsilon, delta).map_err(|e| bad(Some(id), e.to_string()))?;
    let backend = match root.get("backend").map(|v| v.as_str()) {
        None => Backend::Kernel,
        Some(Some("kernel")) => Backend::Kernel,
        Some(Some("oracle")) => Backend::Oracle,
        Some(other) => {
            return Err(bad(
                Some(id),
                format!("\"backend\" must be \"kernel\" or \"oracle\", got {other:?}"),
            ))
        }
    };
    let channel = parse_channel(root, id)?;
    let probes = u64_field(root, id, "probes")?;
    let trim = u64_field(root, id, "trim")?;
    let mitigation = match (probes, trim) {
        (Some(_), Some(_)) => {
            return Err(bad(
                Some(id),
                "\"probes\" and \"trim\" are mutually exclusive",
            ))
        }
        (Some(p), None) => Mitigation::ReProbe {
            probes: u32::try_from(p).map_err(|_| bad(Some(id), "\"probes\" out of range"))?,
        },
        (None, Some(t)) => Mitigation::TrimmedMean {
            trim: u32::try_from(t).map_err(|_| bad(Some(id), "\"trim\" out of range"))?,
        },
        (None, None) => Mitigation::None,
    };
    let phy = match root.get("phy").map(|v| v.as_str()) {
        None => None,
        Some(Some(name)) => Some(
            PhyProfile::named(name)
                .ok_or_else(|| bad(Some(id), format!("unknown \"phy\" profile {name:?}")))?,
        ),
        Some(None) => return Err(bad(Some(id), "\"phy\" must be a profile name string")),
    };
    PetConfig::builder()
        .accuracy(accuracy)
        .backend(backend)
        .channel(channel)
        .mitigation(mitigation)
        .phy(phy)
        .build()
        .map_err(|e| bad(Some(id), e.to_string()))
}

fn parse_estimate(root: &Json, id: &str) -> Result<EstimateParams, RequestError> {
    let tags = u64_field(root, id, "tags")?
        .ok_or_else(|| bad(Some(id), "estimate requires \"tags\""))? as usize;
    if tags == 0 || tags > MAX_TAGS {
        return Err(bad(Some(id), format!("\"tags\" must be 1..={MAX_TAGS}")));
    }
    let rounds = match u64_field(root, id, "rounds")? {
        Some(r) if (1..=u64::from(MAX_ROUNDS)).contains(&r) => Some(r as u32),
        Some(_) => {
            return Err(bad(
                Some(id),
                format!("\"rounds\" must be 1..={MAX_ROUNDS}"),
            ))
        }
        None => None,
    };
    let seed = u64_field(root, id, "seed")?;
    let config = parse_config(root, id)?;
    Ok(EstimateParams {
        tags,
        rounds,
        seed,
        config,
    })
}

fn parse_monitor(root: &Json, id: &str) -> Result<MonitorParams, RequestError> {
    let tags = u64_field(root, id, "tags")?
        .ok_or_else(|| bad(Some(id), "monitor requires \"tags\""))? as usize;
    if tags == 0 || tags > MAX_TAGS {
        return Err(bad(Some(id), format!("\"tags\" must be 1..={MAX_TAGS}")));
    }
    let updates = match u64_field(root, id, "updates")?.unwrap_or(8) {
        u if (1..=u64::from(MAX_UPDATES)).contains(&u) => u as u32,
        _ => {
            return Err(bad(
                Some(id),
                format!("\"updates\" must be 1..={MAX_UPDATES}"),
            ))
        }
    };
    let window = match u64_field(root, id, "window")?.unwrap_or(4) {
        w if (1..=u64::from(updates)).contains(&w) => w as usize,
        _ => return Err(bad(Some(id), "\"window\" must be 1..=updates")),
    };
    let rounds = match u64_field(root, id, "rounds")?.unwrap_or(32) {
        r if (1..=u64::from(MAX_ROUNDS)).contains(&r) => r as u32,
        _ => {
            return Err(bad(
                Some(id),
                format!("\"rounds\" must be 1..={MAX_ROUNDS}"),
            ))
        }
    };
    if u64::from(updates) * u64::from(rounds) > MAX_MONITOR_ROUNDS {
        return Err(bad(
            Some(id),
            format!("\"updates\" x \"rounds\" must be <= {MAX_MONITOR_ROUNDS}"),
        ));
    }
    let alarm_fraction = f64_field(root, id, "alarm_fraction", 0.5)?;
    if !(alarm_fraction > 0.0 && alarm_fraction < 1.0) {
        return Err(bad(Some(id), "\"alarm_fraction\" must be in (0, 1)"));
    }
    let churn_rate = u64_field(root, id, "churn_rate")?.unwrap_or(0) as usize;
    if churn_rate > tags {
        return Err(bad(Some(id), "\"churn_rate\" must be <= tags"));
    }
    let burst_at = match u64_field(root, id, "burst_at")? {
        Some(b) if b < u64::from(updates) => Some(b as u32),
        Some(_) => return Err(bad(Some(id), "\"burst_at\" must be < updates")),
        None => None,
    };
    let burst_size = u64_field(root, id, "burst_size")?.unwrap_or(0) as usize;
    if burst_at.is_some() && (burst_size == 0 || burst_size >= tags) {
        return Err(bad(
            Some(id),
            "\"burst_size\" must be 1..tags when \"burst_at\" is set",
        ));
    }
    let seed = u64_hex_field(root, id, "seed")?;
    let config = parse_config(root, id)?;
    Ok(MonitorParams {
        tags,
        updates,
        window,
        rounds,
        alarm_fraction,
        churn_rate,
        burst_at,
        burst_size,
        seed,
        config,
    })
}

fn parse_robustness(root: &Json, id: &str) -> Result<RobustnessRequest, RequestError> {
    let tags = u64_field(root, id, "tags")?.unwrap_or(500) as usize;
    if tags == 0 || tags > MAX_TAGS {
        return Err(bad(Some(id), format!("\"tags\" must be 1..={MAX_TAGS}")));
    }
    let rounds = match u64_field(root, id, "rounds")?.unwrap_or(16) {
        r if (1..=u64::from(MAX_ROUNDS)).contains(&r) => r as u32,
        _ => {
            return Err(bad(
                Some(id),
                format!("\"rounds\" must be 1..={MAX_ROUNDS}"),
            ))
        }
    };
    let runs = match u64_field(root, id, "runs")?.unwrap_or(4) {
        r if (1..=MAX_RUNS as u64).contains(&r) => r as usize,
        _ => return Err(bad(Some(id), format!("\"runs\" must be 1..={MAX_RUNS}"))),
    };
    let seed = u64_field(root, id, "seed")?.unwrap_or(0xB0B5);
    let miss_rates = match root.get("miss_rates") {
        None => vec![0.0, 0.05],
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| bad(Some(id), "\"miss_rates\" must be an array"))?;
            if items.is_empty() || items.len() > 16 {
                return Err(bad(Some(id), "\"miss_rates\" must hold 1..=16 rates"));
            }
            let mut rates = Vec::with_capacity(items.len());
            for item in items {
                let rate = item
                    .as_f64()
                    .filter(|r| (0.0..1.0).contains(r))
                    .ok_or_else(|| bad(Some(id), "\"miss_rates\" entries must be in [0, 1)"))?;
                rates.push(rate);
            }
            rates
        }
    };
    let false_busy = f64_field(root, id, "false_busy", 0.0)?;
    if !(0.0..1.0).contains(&false_busy) {
        return Err(bad(Some(id), "\"false_busy\" must be in [0, 1)"));
    }
    let probes = u32::try_from(u64_field(root, id, "probes")?.unwrap_or(2))
        .map_err(|_| bad(Some(id), "\"probes\" out of range"))?;
    Ok(RobustnessRequest {
        tags,
        rounds,
        runs,
        seed,
        miss_rates,
        false_busy,
        probes,
    })
}

fn parse_reader_round(root: &Json, id: &str) -> Result<ReaderRoundParams, RequestError> {
    let tags = u64_field(root, id, "tags")?
        .ok_or_else(|| bad(Some(id), "reader-round requires \"tags\""))? as usize;
    if tags == 0 || tags > MAX_TAGS {
        return Err(bad(Some(id), format!("\"tags\" must be 1..={MAX_TAGS}")));
    }
    let zones = match u64_field(root, id, "zones")? {
        Some(z) if (1..=u64::from(MAX_ZONES)).contains(&z) => z as u32,
        Some(_) | None => {
            return Err(bad(
                Some(id),
                format!("reader-round requires \"zones\" in 1..={MAX_ZONES}"),
            ))
        }
    };
    let deploy_seed = u64_hex_field(root, id, "deploy_seed")?
        .ok_or_else(|| bad(Some(id), "reader-round requires \"deploy_seed\""))?;
    let coverage = {
        let items = root
            .get("coverage")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad(Some(id), "reader-round requires a \"coverage\" array"))?;
        if items.is_empty() || items.len() > MAX_COVERAGE_ZONES {
            return Err(bad(
                Some(id),
                format!("\"coverage\" must list 1..={MAX_COVERAGE_ZONES} zones"),
            ));
        }
        let mut zones_covered = Vec::with_capacity(items.len());
        for item in items {
            let z = item
                .as_u64()
                .filter(|&z| z < u64::from(zones))
                .ok_or_else(|| {
                    bad(
                        Some(id),
                        "\"coverage\" entries must be zone indices < zones",
                    )
                })?;
            zones_covered.push(z as u32);
        }
        zones_covered
    };
    let height = match u64_field(root, id, "height")?.unwrap_or(32) {
        h if (1..=64).contains(&h) => h as u32,
        _ => return Err(bad(Some(id), "\"height\" must be 1..=64")),
    };
    let manufacture_seed = u64_hex_field(root, id, "manufacture_seed")?;
    let path_bits = u64_hex_field(root, id, "path")?
        .ok_or_else(|| bad(Some(id), "reader-round requires \"path\""))?;
    if height < 64 && path_bits >= 1u64 << height {
        return Err(bad(Some(id), format!("\"path\" must fit {height} bits")));
    }
    let round_seed = u64_hex_field(root, id, "round_seed")?;
    Ok(ReaderRoundParams {
        tags,
        zones,
        deploy_seed,
        coverage,
        height,
        manufacture_seed,
        path_bits,
        round_seed,
    })
}

/// Serializes an error reply. A `None` id renders as JSON `null`.
#[must_use]
pub fn error_reply(id: Option<&str>, code: ErrorCode, detail: Option<&str>) -> String {
    let id_field = match id {
        Some(id) => format!("\"{}\"", escape(id)),
        None => "null".to_string(),
    };
    match detail {
        Some(d) => format!(
            "{{\"id\":{id_field},\"ok\":false,\"error\":\"{}\",\"detail\":\"{}\"}}",
            code.wire(),
            escape(d)
        ),
        None => format!(
            "{{\"id\":{id_field},\"ok\":false,\"error\":\"{}\"}}",
            code.wire()
        ),
    }
}

/// Serializes a success reply: the envelope (`id`, `ok`, `verb`) followed
/// by `body` fields (a pre-rendered `"k":v,...` fragment; may be empty).
#[must_use]
pub fn ok_reply(id: &str, verb: &str, body: &str) -> String {
    if body.is_empty() {
        format!(
            "{{\"id\":\"{}\",\"ok\":true,\"verb\":\"{verb}\"}}",
            escape(id)
        )
    } else {
        format!(
            "{{\"id\":\"{}\",\"ok\":true,\"verb\":\"{verb}\",{body}}}",
            escape(id)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_estimate() {
        let r = parse_request(r#"{"id":"a","verb":"estimate","tags":100}"#).unwrap();
        assert_eq!(r.id, "a");
        assert_eq!(r.deadline, None);
        match r.verb {
            Verb::Estimate(p) => {
                assert_eq!(p.tags, 100);
                assert_eq!(p.rounds, None);
                assert_eq!(p.seed, None);
                assert_eq!(p.config.backend(), Backend::Kernel);
                assert_eq!(p.config.channel(), ChannelModel::Perfect);
            }
            other => panic!("wrong verb {other:?}"),
        }
    }

    #[test]
    fn parses_full_estimate_knobs() {
        let r = parse_request(
            r#"{"id":"b","verb":"estimate","tags":500,"rounds":32,"seed":7,
                "epsilon":0.2,"delta":0.2,"backend":"oracle","miss":0.05,
                "false_busy":0.01,"probes":2,"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(r.deadline, Some(Duration::from_millis(250)));
        match r.verb {
            Verb::Estimate(p) => {
                assert_eq!(p.rounds, Some(32));
                assert_eq!(p.seed, Some(7));
                assert_eq!(p.config.backend(), Backend::Oracle);
                assert!(matches!(p.config.channel(), ChannelModel::Lossy(_)));
                assert_eq!(p.config.mitigation(), Mitigation::ReProbe { probes: 2 });
            }
            other => panic!("wrong verb {other:?}"),
        }
    }

    #[test]
    fn parses_control_verbs() {
        let r = parse_request(r#"{"id":"t","verb":"telemetry-snapshot"}"#).unwrap();
        assert_eq!(r.verb, Verb::TelemetrySnapshot);
        let r = parse_request(r#"{"id":"s","verb":"shutdown"}"#).unwrap();
        assert_eq!(r.verb, Verb::Shutdown);
        assert_eq!(r.verb.name(), "shutdown");
    }

    #[test]
    fn robustness_defaults_and_bounds() {
        let r = parse_request(r#"{"id":"r","verb":"robustness"}"#).unwrap();
        match r.verb {
            Verb::Robustness(p) => {
                assert_eq!((p.tags, p.rounds, p.runs, p.probes), (500, 16, 4, 2));
                assert_eq!(p.miss_rates, vec![0.0, 0.05]);
            }
            other => panic!("wrong verb {other:?}"),
        }
        for bad in [
            r#"{"id":"r","verb":"robustness","miss_rates":[]}"#,
            r#"{"id":"r","verb":"robustness","miss_rates":[1.5]}"#,
            r#"{"id":"r","verb":"robustness","runs":100000}"#,
            r#"{"id":"r","verb":"robustness","false_busy":2}"#,
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.id.as_deref(), Some("r"), "id recovered for {bad}");
        }
    }

    #[test]
    fn parses_reader_round_with_hex_fields() {
        let r = parse_request(
            r#"{"id":"rr","verb":"reader-round","tags":4000,"zones":4,
                "deploy_seed":"b","coverage":[0,1],"height":32,
                "manufacture_seed":"ffffffffffffffff","path":"9f3c11e2",
                "round_seed":"deadbeefcafef00d","deadline_ms":500}"#,
        )
        .unwrap();
        match r.verb {
            Verb::ReaderRound(p) => {
                assert_eq!(p.tags, 4000);
                assert_eq!(p.zones, 4);
                assert_eq!(p.deploy_seed, 0xb);
                assert_eq!(p.coverage, vec![0, 1]);
                assert_eq!(p.height, 32);
                assert_eq!(p.manufacture_seed, Some(u64::MAX));
                assert_eq!(p.path_bits, 0x9f3c_11e2);
                assert_eq!(p.round_seed, Some(0xdead_beef_cafe_f00d));
            }
            other => panic!("wrong verb {other:?}"),
        }
        // Small values may ride as plain numbers; height defaults to 32.
        let r = parse_request(
            r#"{"id":"rr","verb":"reader-round","tags":10,"zones":2,
                "deploy_seed":7,"coverage":[1],"path":3}"#,
        )
        .unwrap();
        match r.verb {
            Verb::ReaderRound(p) => {
                assert_eq!((p.deploy_seed, p.path_bits, p.height), (7, 3, 32));
                assert_eq!(p.manufacture_seed, None);
                assert_eq!(p.round_seed, None);
            }
            other => panic!("wrong verb {other:?}"),
        }
    }

    #[test]
    fn reader_round_validation_rejects_bad_shapes() {
        for bad in [
            // missing required fields
            r#"{"id":"x","verb":"reader-round"}"#,
            r#"{"id":"x","verb":"reader-round","tags":10,"zones":2,"coverage":[0],"path":"1"}"#,
            r#"{"id":"x","verb":"reader-round","tags":10,"zones":2,"deploy_seed":"1","path":"1"}"#,
            r#"{"id":"x","verb":"reader-round","tags":10,"zones":2,"deploy_seed":"1","coverage":[0]}"#,
            // out-of-range shapes
            r#"{"id":"x","verb":"reader-round","tags":0,"zones":2,"deploy_seed":"1","coverage":[0],"path":"1"}"#,
            r#"{"id":"x","verb":"reader-round","tags":10,"zones":0,"deploy_seed":"1","coverage":[0],"path":"1"}"#,
            r#"{"id":"x","verb":"reader-round","tags":10,"zones":2,"deploy_seed":"1","coverage":[],"path":"1"}"#,
            r#"{"id":"x","verb":"reader-round","tags":10,"zones":2,"deploy_seed":"1","coverage":[5],"path":"1"}"#,
            r#"{"id":"x","verb":"reader-round","tags":10,"zones":2,"deploy_seed":"1","coverage":[0],"path":"1","height":65}"#,
            // path wider than the tree
            r#"{"id":"x","verb":"reader-round","tags":10,"zones":2,"deploy_seed":"1","coverage":[0],"path":"100","height":8}"#,
            // malformed hex
            r#"{"id":"x","verb":"reader-round","tags":10,"zones":2,"deploy_seed":"xyz","coverage":[0],"path":"1"}"#,
            r#"{"id":"x","verb":"reader-round","tags":10,"zones":2,"deploy_seed":"11223344556677889","coverage":[0],"path":"1"}"#,
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.id.as_deref(), Some("x"), "{bad}");
        }
        // A height-64 path uses the full u64 range.
        let r = parse_request(
            r#"{"id":"y","verb":"reader-round","tags":10,"zones":2,"deploy_seed":"1",
                "coverage":[0],"path":"ffffffffffffffff","height":64}"#,
        )
        .unwrap();
        assert!(matches!(r.verb, Verb::ReaderRound(p) if p.path_bits == u64::MAX));
    }

    #[test]
    fn parses_monitor_defaults_and_full_knobs() {
        let r = parse_request(r#"{"id":"m","verb":"monitor","tags":2000}"#).unwrap();
        match r.verb {
            Verb::Monitor(p) => {
                assert_eq!((p.tags, p.updates, p.window, p.rounds), (2000, 8, 4, 32));
                assert_eq!(p.alarm_fraction, 0.5);
                assert_eq!((p.churn_rate, p.burst_at, p.burst_size), (0, None, 0));
                assert_eq!(p.seed, None);
                assert_eq!(p.config.backend(), Backend::Kernel);
            }
            other => panic!("wrong verb {other:?}"),
        }
        let r = parse_request(
            r#"{"id":"m","verb":"monitor","tags":2000,"updates":8,"window":4,
                "rounds":16,"churn_rate":20,"burst_at":5,"burst_size":600,
                "alarm_fraction":0.7,"seed":"deadbeefcafef00d","backend":"oracle"}"#,
        )
        .unwrap();
        assert_eq!(r.verb.name(), "monitor");
        match r.verb {
            Verb::Monitor(p) => {
                assert_eq!(p.rounds, 16);
                assert_eq!(p.churn_rate, 20);
                assert_eq!((p.burst_at, p.burst_size), (Some(5), 600));
                assert_eq!(p.alarm_fraction, 0.7);
                assert_eq!(p.seed, Some(0xdead_beef_cafe_f00d));
                assert_eq!(p.config.backend(), Backend::Oracle);
            }
            other => panic!("wrong verb {other:?}"),
        }
    }

    #[test]
    fn monitor_validation_rejects_bad_shapes() {
        for bad in [
            // missing/zero tags
            r#"{"id":"m","verb":"monitor"}"#,
            r#"{"id":"m","verb":"monitor","tags":0}"#,
            // update/window/round bounds
            r#"{"id":"m","verb":"monitor","tags":10,"updates":0}"#,
            r#"{"id":"m","verb":"monitor","tags":10,"updates":100000}"#,
            r#"{"id":"m","verb":"monitor","tags":10,"updates":4,"window":5}"#,
            r#"{"id":"m","verb":"monitor","tags":10,"window":0}"#,
            r#"{"id":"m","verb":"monitor","tags":10,"rounds":0}"#,
            // total round budget
            r#"{"id":"m","verb":"monitor","tags":10,"updates":1000,"rounds":10000}"#,
            // alarm fraction open interval
            r#"{"id":"m","verb":"monitor","tags":10,"alarm_fraction":0}"#,
            r#"{"id":"m","verb":"monitor","tags":10,"alarm_fraction":1}"#,
            // churn/burst shapes
            r#"{"id":"m","verb":"monitor","tags":10,"churn_rate":11}"#,
            r#"{"id":"m","verb":"monitor","tags":10,"burst_at":8}"#,
            r#"{"id":"m","verb":"monitor","tags":10,"burst_at":2}"#,
            r#"{"id":"m","verb":"monitor","tags":10,"burst_at":2,"burst_size":10}"#,
            // config knobs flow through the shared parser
            r#"{"id":"m","verb":"monitor","tags":10,"epsilon":2}"#,
            r#"{"id":"m","verb":"monitor","tags":10,"backend":"gpu"}"#,
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.id.as_deref(), Some("m"), "{bad}");
        }
    }

    #[test]
    fn rejects_bad_requests_with_recovered_id() {
        // Parses far enough to echo the id back.
        for bad in [
            r#"{"id":"x","verb":"warp"}"#,
            r#"{"id":"x","verb":"estimate"}"#,
            r#"{"id":"x","verb":"estimate","tags":0}"#,
            r#"{"id":"x","verb":"estimate","tags":100,"rounds":0}"#,
            r#"{"id":"x","verb":"estimate","tags":100,"epsilon":2}"#,
            r#"{"id":"x","verb":"estimate","tags":100,"miss":1.5}"#,
            r#"{"id":"x","verb":"estimate","tags":100,"probes":1,"trim":1}"#,
            r#"{"id":"x","verb":"estimate","tags":100,"backend":"gpu"}"#,
            r#"{"id":"x","verb":"estimate","tags":100,"deadline_ms":0}"#,
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.id.as_deref(), Some("x"), "{bad}");
        }
        // Cannot even recover an id.
        for bad in [
            "",
            "nonsense",
            "[1]",
            r#"{"verb":"estimate"}"#,
            r#"{"id":7}"#,
        ] {
            assert_eq!(parse_request(bad).unwrap_err().id, None, "{bad:?}");
        }
    }

    #[test]
    fn replies_render_stable_json() {
        assert_eq!(
            error_reply(None, ErrorCode::BadRequest, Some("oops \"x\"")),
            r#"{"id":null,"ok":false,"error":"bad_request","detail":"oops \"x\""}"#
        );
        assert_eq!(
            error_reply(Some("a"), ErrorCode::Overloaded, None),
            r#"{"id":"a","ok":false,"error":"overloaded"}"#
        );
        assert_eq!(
            ok_reply("a", "shutdown", ""),
            r#"{"id":"a","ok":true,"verb":"shutdown"}"#
        );
        assert_eq!(
            ok_reply("a", "estimate", "\"estimate\":12.5"),
            r#"{"id":"a","ok":true,"verb":"estimate","estimate":12.5}"#
        );
        // Round-trip: replies are themselves valid protocol JSON.
        for line in [
            error_reply(Some("z"), ErrorCode::DeadlineExceeded, Some("late")),
            ok_reply("z", "estimate", "\"estimate\":1.0,\"rounds\":2"),
        ] {
            let v = Json::parse(&line).unwrap();
            assert_eq!(v.get("id").and_then(Json::as_str), Some("z"));
        }
    }
}
