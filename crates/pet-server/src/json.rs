//! A minimal, strict JSON reader for the wire protocol.
//!
//! The workspace has no serde (offline build image), and the telemetry
//! crate's flat-object scanner is too loose for untrusted input: the server
//! faces arbitrary bytes from the network, so requests are parsed with a
//! real recursive-descent parser — bounded depth, bounded input length,
//! every failure a structured [`JsonError`], never a panic. The fuzz suite
//! (`tests/proto_fuzz.rs`) holds it to that.

use std::fmt;

/// Maximum input length the parser accepts. One request per line; anything
/// longer is hostile or broken and is rejected before allocation grows.
pub const MAX_INPUT_BYTES: usize = 64 * 1024;

/// Maximum nesting depth (objects/arrays). The protocol needs 2.
const MAX_DEPTH: u32 = 16;

/// A parsed JSON value.
///
/// Object entries are kept as a `Vec` in input order and looked up
/// linearly: protocol objects have a handful of keys, and a flat pair list
/// parses with one allocation where a tree map costs a node per insert —
/// this type sits on the per-request hot path of both serving backends.
/// Duplicate keys are still rejected at parse time, so lookups are
/// unambiguous.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; integer accessors re-check range).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: `(key, value)` pairs in input order, keys unique.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] for malformed input, inputs longer than
    /// [`MAX_INPUT_BYTES`], or nesting deeper than the protocol bound.
    pub fn parse(input: &str) -> Result<Self, JsonError> {
        if input.len() > MAX_INPUT_BYTES {
            return Err(JsonError {
                at: MAX_INPUT_BYTES,
                msg: format!("input exceeds {MAX_INPUT_BYTES} bytes"),
            });
        }
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `u64`, requiring an exact non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value back to compact JSON. Numbers render through
    /// Rust's shortest-round-trip `f64` display, so integers stay
    /// integer-shaped and `parse(render(v))` is value-identical to `v`.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Self::Null => "null".to_string(),
            Self::Bool(b) => b.to_string(),
            Self::Num(n) => format!("{n}"),
            Self::Str(s) => format!("\"{}\"", escape(s)),
            Self::Arr(items) => {
                let body: Vec<String> = items.iter().map(Self::render).collect();
                format!("[{}]", body.join(","))
            }
            Self::Obj(fields) => {
                let body: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape(k), v.render()))
                    .collect();
                format!("{{{}}}", body.join(","))
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            // Linear duplicate scan: key counts are small in practice and
            // bounded by MAX_INPUT_BYTES in the worst case.
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Bulk-copy the plain run up to the next quote, escape, control
            // byte, or non-ASCII byte; the match below handles the stopper.
            let start = self.pos;
            while matches!(self.peek(), Some(c) if (0x20..0x80).contains(&c) && c != b'"' && c != b'\\')
            {
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii run"));
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired —
                            // the protocol has no use for astral escapes.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 3; // the final +1 below covers the 4th
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so the slice is
                    // valid; copy the whole scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let v: f64 = text.parse().map_err(|_| JsonError {
            at: start,
            msg: format!("bad number {text:?}"),
        })?;
        if !v.is_finite() {
            return Err(JsonError {
                at: start,
                msg: "number out of range".to_string(),
            });
        }
        Ok(Json::Num(v))
    }
}

/// Escapes `s` for embedding inside a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_objects() {
        let v = Json::parse(
            r#"{"id":"r-1","verb":"estimate","tags":5000,"rounds":16,"miss":0.05,"deterministic":true,"rates":[0,0.1]}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("r-1"));
        assert_eq!(v.get("tags").and_then(Json::as_u64), Some(5000));
        assert_eq!(v.get("miss").and_then(Json::as_f64), Some(0.05));
        assert_eq!(v.get("deterministic").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("rates").and_then(Json::as_arr).unwrap().len(), 2);
        assert_eq!(v.get("absent"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "[1,2",
            "\"unterminated",
            "{\"a\":1}{\"b\":2}",
            "nul",
            "truex",
            "{\"a\":1e999}",
            "01a",
            "-",
            "{\"k\":\"\\q\"}",
            "{\"k\":\"\\u12\"}",
            "{\"k\":\"\\ud800\"}",
            "{\"dup\":1,\"dup\":2}",
            "\u{7}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_and_length_bounds_hold() {
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&deep).is_err(), "deep nesting must be rejected");
        let shallow = "[".repeat(8) + &"]".repeat(8);
        assert!(Json::parse(&shallow).is_ok());
        let long = format!("\"{}\"", "x".repeat(MAX_INPUT_BYTES + 8));
        assert!(Json::parse(&long).is_err(), "oversized input rejected");
    }

    #[test]
    fn integer_accessor_is_exact() {
        assert_eq!(Json::parse("17").unwrap().as_u64(), Some(17));
        assert_eq!(Json::parse("17.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e100").unwrap().as_u64(), None);
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn strings_unescape_and_reescape() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
