//! A small blocking client for the line protocol.
//!
//! One struct, one method that matters: [`Client::roundtrip`] writes a
//! request line and reads the single reply line the server guarantees.
//! The load generator, the integration tests, and the examples all speak
//! through this, so the framing (newline discipline, length bound, read
//! timeouts) lives in exactly one place.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { stream, reader })
    }

    /// Applies a read timeout to subsequent [`Self::roundtrip`] calls
    /// (`None` blocks indefinitely).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request line and reads the matching reply line (without
    /// the trailing newline).
    ///
    /// # Errors
    ///
    /// Returns an error on write failure, read failure/timeout, or when
    /// the server closed the connection before replying.
    pub fn roundtrip(&mut self, request_line: &str) -> std::io::Result<String> {
        self.stream.write_all(request_line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }

    /// Sends raw bytes as-is (no newline added) — fuzzing hook.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads one reply line (fuzzing hook; same framing as
    /// [`Self::roundtrip`]).
    ///
    /// # Errors
    ///
    /// Returns an error on read failure/timeout or EOF.
    pub fn read_reply(&mut self) -> std::io::Result<String> {
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }
}
