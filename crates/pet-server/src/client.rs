//! A small blocking client for the line protocol.
//!
//! One struct, two styles of use. [`Client::roundtrip`] writes a request
//! line and reads the single reply line the server guarantees — the
//! simple closed-loop shape. [`Client::send`]/[`Client::recv`] split that
//! in two so callers can keep several requests in flight on one
//! connection or consume the multi-line stream a `monitor` subscription
//! returns (one [`Client::recv`] per delta line plus one for the
//! summary), and [`Client::send_batch`] packages the common case: write
//! a whole burst of lines in one syscall, then collect the replies, which
//! the server returns in request order. The load generator, the fleet's
//! reader links, the integration tests, and the examples all speak
//! through this type, so the framing (newline discipline, read timeouts)
//! lives in exactly one place.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected protocol client.
///
/// Deliberately holds exactly one file descriptor: reply buffering is done
/// with an internal byte buffer rather than a `BufReader` over a cloned
/// stream, because at 10k concurrent connections the clone's second
/// descriptor is the difference between fitting under a 20k fd limit and
/// not.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Received-but-unconsumed reply bytes; `rpos` marks how far
    /// [`Self::recv_into`] has already handed lines out.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Reused staging buffer for outgoing lines, so steady-state sends
    /// allocate nothing.
    wbuf: Vec<u8>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
        })
    }

    /// Applies a read timeout to subsequent reply reads (`None` blocks
    /// indefinitely).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Writes one request line (newline appended) without waiting for the
    /// reply; pair with [`Self::recv`]. Multiple sends may be outstanding —
    /// the server answers each connection strictly in request order.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on write failure.
    pub fn send(&mut self, request_line: &str) -> std::io::Result<()> {
        self.wbuf.clear();
        self.wbuf.extend_from_slice(request_line.as_bytes());
        self.wbuf.push(b'\n');
        self.stream.write_all(&self.wbuf)
    }

    /// Reads the next reply line (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Returns an error on read failure/timeout, or `UnexpectedEof` when
    /// the server closed the connection before replying.
    pub fn recv(&mut self) -> std::io::Result<String> {
        let mut reply = String::new();
        self.recv_into(&mut reply)?;
        Ok(reply)
    }

    /// Reads the next reply line into a caller-owned buffer (cleared
    /// first), so tight loops can reuse one allocation.
    ///
    /// # Errors
    ///
    /// Returns an error on read failure/timeout, or `UnexpectedEof` when
    /// the server closed the connection before replying.
    pub fn recv_into(&mut self, reply: &mut String) -> std::io::Result<()> {
        reply.clear();
        loop {
            if let Some(nl) = self.rbuf[self.rpos..].iter().position(|&b| b == b'\n') {
                let line = &self.rbuf[self.rpos..self.rpos + nl];
                let text = std::str::from_utf8(line).map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "reply line is not valid UTF-8",
                    )
                })?;
                reply.push_str(text);
                self.rpos += nl + 1;
                if self.rpos == self.rbuf.len() {
                    self.rbuf.clear();
                    self.rpos = 0;
                }
                while reply.ends_with('\r') {
                    reply.pop();
                }
                return Ok(());
            }
            // No complete line buffered: reclaim consumed bytes, then pull
            // another chunk from the socket.
            if self.rpos > 0 {
                self.rbuf.drain(..self.rpos);
                self.rpos = 0;
            }
            let filled = self.rbuf.len();
            self.rbuf.resize(filled + 8192, 0);
            match self.stream.read(&mut self.rbuf[filled..]) {
                Ok(0) => {
                    self.rbuf.truncate(filled);
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection before replying",
                    ));
                }
                Ok(n) => self.rbuf.truncate(filled + n),
                Err(e) => {
                    self.rbuf.truncate(filled);
                    return Err(e);
                }
            }
        }
    }

    /// Sends one request line and reads the matching reply line.
    ///
    /// # Errors
    ///
    /// Returns an error on write failure, read failure/timeout, or when
    /// the server closed the connection before replying.
    pub fn roundtrip(&mut self, request_line: &str) -> std::io::Result<String> {
        self.send(request_line)?;
        self.recv()
    }

    /// Pipelines a burst: writes every line in a single syscall, then
    /// reads exactly one reply per line, in order.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error; replies already read are dropped with
    /// it, so treat any error as fatal for the connection.
    pub fn send_batch<S: AsRef<str>>(
        &mut self,
        request_lines: &[S],
    ) -> std::io::Result<Vec<String>> {
        self.wbuf.clear();
        for line in request_lines {
            self.wbuf.extend_from_slice(line.as_ref().as_bytes());
            self.wbuf.push(b'\n');
        }
        self.stream.write_all(&self.wbuf)?;
        let mut replies = Vec::with_capacity(request_lines.len());
        for _ in request_lines {
            replies.push(self.recv()?);
        }
        Ok(replies)
    }

    /// Sends raw bytes as-is (no newline added) — fuzzing and pipelining
    /// hook for callers that stage their own burst buffer.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads one reply line (alias of [`Self::recv`], kept for the fuzz
    /// suite's vocabulary).
    ///
    /// # Errors
    ///
    /// Returns an error on read failure/timeout or EOF.
    pub fn read_reply(&mut self) -> std::io::Result<String> {
        self.recv()
    }
}
