//! The sharded non-blocking event-loop backend.
//!
//! ```text
//!              accept()             round-robin intake
//! clients ──▶ acceptor thread ──▶ [shard 0] [shard 1] … [shard N-1]
//!                                     │ each shard, single-threaded:
//!                                     │  sweep: flush wbufs → nonblocking
//!                                     │         reads → parse lines
//!                                     │  exec:  run queued work inline
//!                                     └  idle:  exponential micro-backoff
//! ```
//!
//! One thread per *shard*, not per connection: each shard owns a slice of
//! the connections outright (no locks on the hot path) and drives them
//! with non-blocking I/O. std has no readiness syscall surface (and this
//! crate forbids `unsafe`, so `epoll` via FFI is out), so readiness is
//! *polled*: every loop iteration sweeps the shard's connections with
//! non-blocking reads and writes, treating `WouldBlock` as "not ready",
//! and sleeps a few tens of microseconds only when a full sweep made no
//! progress. An O(connections) sweep sounds expensive, but one
//! `read(2)` per idle connection is ~1 µs — 10k connections cost ~10 ms
//! per sweep, which is exactly the regime where per-connection threads
//! have long since collapsed under scheduler pressure. Shards are placed
//! by the OS scheduler (std offers no affinity API); with one shard per
//! core the steady state is the same as pinning.
//!
//! What makes this backend fast is not the polling, it is what the
//! polling *removes* from the per-request path: no thread handoffs (work
//! executes inline on the shard that parsed it), no per-request reply
//! channels, and **pipelining** — a client may write many request lines
//! back-to-back; the shard parses them all out of one read, executes
//! them, and batches the replies into one write. Per-connection buffers
//! are reused sweep to sweep.
//!
//! **Reply ordering.** The threaded backend answers strictly in request
//! order per connection (it is serial). To stay byte-for-byte
//! stream-identical, each parsed request gets a per-connection sequence
//! number; control replies and refusals that finish out of order are held
//! until every earlier reply has been appended ([`Conn::complete`]).
//!
//! **Backpressure.** [`crate::service::ServerConfig::queue_capacity`]
//! bounds the parsed-but-unexecuted work items across all shards (one
//! atomic counter); beyond it requests bounce with `overloaded`
//! immediately, exactly like the threaded queue.
//!
//! **Deadlines.** A shard cannot observe bytes that arrive while it is
//! executing, so a request's enqueue time is taken as the moment the
//! connection was last known drained (accept time for the first sweep).
//! That *over*-charges queueing delay by at most one sweep period — a
//! deadline that would have expired in the threaded queue also expires
//! here.
//!
//! **Shutdown drains.** On the `shutdown` verb every shard finishes its
//! queued work, answers whatever bytes already arrived (work verbs now
//! refuse `shutting_down`), flushes, and signals drained; the last shard
//! to drain wakes the listener closed, and only then is the
//! `"drained":true` ack written.

use crate::proto::Request;
use crate::service::{Dispatch, ServerConfig, ServiceCore, MAX_LINE_BYTES};
use pet_obs::Summary;
use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Read-chunk size per syscall; also the reusable per-shard scratch size.
const READ_CHUNK: usize = 64 * 1024;

/// Idle backoff: first sleep 20 µs, doubling to ≤ 160 µs. The cap bounds
/// both idle CPU (≲1% per shard) and the deadline over-charge described in
/// the module docs.
const IDLE_BACKOFF_BASE_US: u64 = 20;
const IDLE_BACKOFF_MAX_DOUBLINGS: u32 = 3;

/// Flush patience during the shutdown drain: a client that stopped
/// reading cannot hold the whole server hostage.
const DRAIN_FLUSH_BUDGET: Duration = Duration::from_secs(1);

/// State shared between the acceptor, the shards, and the handle.
struct EvShared {
    core: Arc<ServiceCore>,
    addr: SocketAddr,
    /// Global bound on parsed-but-unexecuted work items.
    queue_capacity: usize,
    pending: AtomicUsize,
    /// Count of shards that completed their shutdown drain.
    drained: (Mutex<usize>, Condvar),
    nshards: usize,
    /// Per-shard handoff of freshly accepted connections, stamped with
    /// their accept time (the first conservative "last drained" bound).
    intakes: Vec<Mutex<VecDeque<(TcpStream, Instant)>>>,
}

impl EvShared {
    /// Unblocks the accept loop; the connect itself is the signal.
    fn wake_listener(&self) {
        let _ = TcpStream::connect(self.addr);
    }

    fn mark_drained(&self) {
        let (lock, cvar) = &self.drained;
        let mut n = lock.lock().expect("drain count poisoned");
        *n += 1;
        if *n == self.nshards {
            // Last shard out wakes the listener — after every shard has
            // drained, before any ack is written (same order as the
            // threaded backend).
            self.wake_listener();
        }
        cvar.notify_all();
    }

    fn wait_all_drained(&self) {
        let (lock, cvar) = &self.drained;
        let mut n = lock.lock().expect("drain count poisoned");
        while *n < self.nshards {
            n = cvar.wait(n).expect("drain count poisoned");
        }
    }
}

/// The evented server's handle (wrapped by [`crate::server::ServerHandle`]).
pub(crate) struct EventedHandle {
    shared: Arc<EvShared>,
    acceptor: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
}

impl EventedHandle {
    pub(crate) fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    pub(crate) fn metrics(&self) -> Summary {
        self.shared.core.snapshot()
    }

    pub(crate) fn shutdown(&self) {
        self.shared.core.begin_shutdown();
        self.shared.wait_all_drained();
        // Benign double-wake when a shard already did it.
        self.shared.wake_listener();
    }

    pub(crate) fn join(mut self) -> Summary {
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
        self.shared.core.snapshot()
    }
}

/// Starts the evented backend on an already-bound listener.
pub(crate) fn serve_evented(
    config: &ServerConfig,
    listener: TcpListener,
    core: Arc<ServiceCore>,
) -> std::io::Result<EventedHandle> {
    let addr = listener.local_addr()?;
    let nshards = config.workers;
    let shared = Arc::new(EvShared {
        core,
        addr,
        queue_capacity: config.queue_capacity,
        pending: AtomicUsize::new(0),
        drained: (Mutex::new(0), Condvar::new()),
        nshards,
        intakes: (0..nshards).map(|_| Mutex::new(VecDeque::new())).collect(),
    });

    let shard_threads: Vec<JoinHandle<()>> = (0..nshards)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("pet-shard-{i}"))
                .spawn(move || Shard::new(i, shared).run())
                .expect("spawn shard")
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("pet-acceptor".to_string())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn acceptor")
    };

    Ok(EventedHandle {
        shared,
        acceptor: Some(acceptor),
        shard_threads,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<EvShared>) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if shared.core.is_shutting_down() {
            break; // the wake-up connection (or a raced client) ends us
        }
        let Ok(stream) = stream else { continue };
        shared.intakes[next]
            .lock()
            .expect("intake poisoned")
            .push_back((stream, Instant::now()));
        next = (next + 1) % shared.nshards;
    }
    // Dropping the listener closes the socket — every shard has drained by
    // the time the wake-up arrives.
}

/// One connection owned by a shard.
struct Conn {
    stream: TcpStream,
    gen: u64,
    /// Unparsed input bytes (at most one partial line after parsing).
    rbuf: Vec<u8>,
    /// Prefix of `rbuf` already scanned for a newline.
    scan: usize,
    /// Pending output bytes; `[wpos..]` is still unwritten.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Sequence number the next parsed request will get.
    next_seq: u64,
    /// Next sequence number allowed to append to `wbuf`.
    write_seq: u64,
    /// Replies that finished before an earlier one was appended.
    held: BTreeMap<u64, String>,
    /// When the connection's socket was last known read-drained — the
    /// conservative enqueue stamp for deadline accounting.
    last_drained: Instant,
    /// No more reads; close once every assigned reply is flushed.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64, accepted: Instant) -> Self {
        Self {
            stream,
            gen,
            rbuf: Vec::new(),
            scan: 0,
            wbuf: Vec::new(),
            wpos: 0,
            next_seq: 0,
            write_seq: 0,
            held: BTreeMap::new(),
            last_drained: accepted,
            closing: false,
        }
    }

    /// Whether every assigned reply has been appended and flushed.
    fn done(&self) -> bool {
        self.write_seq == self.next_seq && self.wpos == self.wbuf.len()
    }

    fn append(&mut self, reply: &str) {
        self.wbuf.reserve(reply.len() + 1);
        self.wbuf.extend_from_slice(reply.as_bytes());
        self.wbuf.push(b'\n');
    }

    /// Records the reply for sequence `seq`, appending it (and any
    /// now-unblocked held replies) in strict request order.
    fn complete(&mut self, seq: u64, reply: String) {
        if seq == self.write_seq {
            self.append(&reply);
            self.write_seq += 1;
            while let Some(next) = self.held.remove(&self.write_seq) {
                self.append(&next);
                self.write_seq += 1;
            }
        } else {
            self.held.insert(seq, reply);
        }
    }

    /// Writes as much of `wbuf` as the socket accepts. `Err(())` is a dead
    /// connection; `Ok(true)` means bytes moved.
    fn flush(&mut self) -> Result<bool, ()> {
        let mut wrote = false;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    self.wpos += n;
                    wrote = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > READ_CHUNK {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(wrote)
    }
}

/// A work item parsed by this shard, executed inline after the sweep.
struct ShardJob {
    request: Box<Request>,
    enqueued: Instant,
    slot: usize,
    gen: u64,
    seq: u64,
}

/// A `shutdown` ack owed to a connection once the whole server drains.
struct PendingAck {
    slot: usize,
    gen: u64,
    seq: u64,
    ack: String,
    started: Instant,
}

struct Shard {
    idx: usize,
    shared: Arc<EvShared>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    jobs: VecDeque<ShardJob>,
    acks: Vec<PendingAck>,
    gen_counter: u64,
}

impl Shard {
    fn new(idx: usize, shared: Arc<EvShared>) -> Self {
        Self {
            idx,
            shared,
            conns: Vec::new(),
            free: Vec::new(),
            jobs: VecDeque::new(),
            acks: Vec::new(),
            gen_counter: 0,
        }
    }

    fn run(mut self) {
        let mut scratch = vec![0u8; READ_CHUNK];
        let mut idle: u32 = 0;
        loop {
            let mut progress = self.adopt();
            progress |= self.sweep(&mut scratch);
            progress |= self.run_jobs();
            if self.shared.core.is_shutting_down() {
                self.drain_and_exit(&mut scratch);
                return;
            }
            if progress {
                idle = 0;
            } else {
                let sleep_us = IDLE_BACKOFF_BASE_US << idle.min(IDLE_BACKOFF_MAX_DOUBLINGS);
                idle = idle.saturating_add(1);
                std::thread::sleep(Duration::from_micros(sleep_us));
            }
        }
    }

    /// Takes ownership of freshly accepted connections.
    fn adopt(&mut self) -> bool {
        let mut fresh = {
            let mut intake = self.shared.intakes[self.idx]
                .lock()
                .expect("intake poisoned");
            if intake.is_empty() {
                return false;
            }
            std::mem::take(&mut *intake)
        };
        let mut any = false;
        for (stream, accepted) in fresh.drain(..) {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            self.gen_counter += 1;
            let conn = Conn::new(stream, self.gen_counter, accepted);
            let slot = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len() - 1
            });
            self.conns[slot] = Some(conn);
            any = true;
        }
        any
    }

    /// One pass over every connection: flush pending output, then read and
    /// parse whatever arrived.
    fn sweep(&mut self, scratch: &mut [u8]) -> bool {
        let mut progress = false;
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            let alive = match conn.flush() {
                Err(()) => false,
                Ok(wrote) => {
                    progress |= wrote;
                    if conn.closing {
                        !conn.done()
                    } else {
                        match self.read_into(&mut conn, slot, scratch) {
                            Err(()) => false,
                            Ok(read_any) => {
                                progress |= read_any;
                                // Flush what the parse produced right away;
                                // replies completed by `run_jobs` ride the
                                // next sweep's flush.
                                match conn.flush() {
                                    Err(()) => false,
                                    Ok(wrote) => {
                                        progress |= wrote;
                                        !(conn.closing && conn.done())
                                    }
                                }
                            }
                        }
                    }
                }
            };
            if alive {
                self.conns[slot] = Some(conn);
            } else {
                self.release(slot, conn);
            }
        }
        progress
    }

    fn release(&mut self, slot: usize, conn: Conn) {
        drop(conn); // closes the socket
        self.free.push(slot);
    }

    /// Non-blocking reads into the connection's buffer, parsing complete
    /// lines as they land. `Err(())` is a dead connection to drop now.
    fn read_into(&mut self, conn: &mut Conn, slot: usize, scratch: &mut [u8]) -> Result<bool, ()> {
        let mut read_any = false;
        loop {
            if conn.closing {
                break;
            }
            match conn.stream.read(scratch) {
                Ok(0) => {
                    // EOF. The unterminated tail still gets a reply —
                    // mirrors the threaded reader, whose read_until
                    // returns the final line without its newline.
                    read_any = true;
                    if !conn.rbuf.is_empty() {
                        let tail = std::mem::take(&mut conn.rbuf);
                        conn.scan = 0;
                        if let Some(d) = self.shared.core.handle_line(&tail) {
                            self.act(conn, slot, d);
                        }
                    }
                    conn.closing = true;
                    break;
                }
                Ok(n) => {
                    read_any = true;
                    conn.rbuf.extend_from_slice(&scratch[..n]);
                    self.parse_lines(conn, slot);
                    if n < scratch.len() {
                        break; // very likely drained; next sweep confirms
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        conn.last_drained = Instant::now();
        Ok(read_any)
    }

    /// Splits complete lines out of the connection's buffer and dispatches
    /// each through the core, enforcing the line-length bound.
    fn parse_lines(&mut self, conn: &mut Conn, slot: usize) {
        let mut start = 0usize;
        while !conn.closing {
            let Some(rel) = conn.rbuf[conn.scan..].iter().position(|&b| b == b'\n') else {
                conn.scan = conn.rbuf.len();
                break;
            };
            let nl = conn.scan + rel;
            // Same bound as the threaded reader: a line whose bytes
            // (newline included) exceed MAX_LINE_BYTES is refused and the
            // connection is dropped.
            if nl + 1 - start > MAX_LINE_BYTES {
                self.oversize(conn);
                return;
            }
            let action = self.shared.core.handle_line(&conn.rbuf[start..nl]);
            start = nl + 1;
            conn.scan = start;
            if let Some(d) = action {
                self.act(conn, slot, d);
            }
        }
        if start > 0 {
            conn.rbuf.drain(..start);
            conn.scan -= start;
        }
        if conn.rbuf.len() > MAX_LINE_BYTES && !conn.closing {
            self.oversize(conn);
        }
    }

    fn oversize(&mut self, conn: &mut Conn) {
        let reply = self.shared.core.refuse_oversized();
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.complete(seq, reply);
        conn.rbuf.clear();
        conn.scan = 0;
        conn.closing = true;
    }

    /// Applies one dispatch decision to the connection.
    fn act(&mut self, conn: &mut Conn, slot: usize, dispatch: Dispatch) {
        let seq = conn.next_seq;
        conn.next_seq += 1;
        match dispatch {
            Dispatch::Reply(reply) => conn.complete(seq, reply),
            Dispatch::Work(request) => {
                if self.try_acquire_pending() {
                    self.jobs.push_back(ShardJob {
                        request,
                        enqueued: conn.last_drained,
                        slot,
                        gen: conn.gen,
                        seq,
                    });
                } else {
                    let reply = self.shared.core.refuse_overloaded(&request.id);
                    conn.complete(seq, reply);
                }
            }
            Dispatch::Shutdown { ack } => {
                // The shared flag is already set; the ack is owed once the
                // whole server has drained (see drain_and_exit).
                self.acks.push(PendingAck {
                    slot,
                    gen: conn.gen,
                    seq,
                    ack,
                    started: Instant::now(),
                });
            }
        }
    }

    /// Claims one slot of the global pending budget, or reports overload.
    fn try_acquire_pending(&self) -> bool {
        let cap = self.shared.queue_capacity;
        let mut cur = self.shared.pending.load(Ordering::Relaxed);
        loop {
            if cur >= cap {
                return false;
            }
            match self.shared.pending.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Executes every queued work item inline, oldest first.
    fn run_jobs(&mut self) -> bool {
        let mut progress = false;
        while let Some(job) = self.jobs.pop_front() {
            self.shared.pending.fetch_sub(1, Ordering::AcqRel);
            let reply = self.shared.core.execute_work(&job.request, job.enqueued);
            self.deliver(job.slot, job.gen, job.seq, reply);
            progress = true;
        }
        progress
    }

    /// Routes a finished reply back to its connection, if it still exists
    /// (the job is "served" either way, like the threaded backend's
    /// ignored reply-channel send).
    fn deliver(&mut self, slot: usize, gen: u64, seq: u64, reply: String) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            if conn.gen == gen {
                conn.complete(seq, reply);
            }
        }
    }

    /// The shutdown path: finish queued work, answer already-arrived
    /// bytes, flush everything, signal drained — and if this shard owes
    /// the ack, write it only after *every* shard has drained.
    fn drain_and_exit(&mut self, scratch: &mut [u8]) {
        // Adopt stragglers so their clients get structured refusals (or a
        // connection close) instead of silence.
        self.adopt();
        self.run_jobs();
        // One final read sweep: work verbs now refuse `shutting_down`
        // inside the core, so this can only produce inline replies.
        self.sweep(scratch);
        self.run_jobs();

        let deadline = Instant::now() + DRAIN_FLUSH_BUDGET;
        self.flush_all(deadline);
        self.shared.mark_drained();

        if !self.acks.is_empty() {
            self.shared.wait_all_drained();
            let acks = std::mem::take(&mut self.acks);
            for pending in acks {
                let latency = pending.started.elapsed();
                if let Some(conn) = self.conns.get_mut(pending.slot).and_then(Option::as_mut) {
                    if conn.gen == pending.gen {
                        self.shared.core.record_ok(latency);
                        conn.complete(pending.seq, pending.ack);
                    }
                }
            }
            self.flush_all(Instant::now() + DRAIN_FLUSH_BUDGET);
        }
        // Dropping the shard closes every remaining connection.
    }

    /// Flushes every connection's pending output, retrying briefly.
    fn flush_all(&mut self, deadline: Instant) {
        loop {
            let mut unflushed = false;
            for slot in 0..self.conns.len() {
                let Some(conn) = self.conns[slot].as_mut() else {
                    continue;
                };
                match conn.flush() {
                    Err(()) => {
                        let conn = self.conns[slot].take().expect("present");
                        self.release(slot, conn);
                    }
                    Ok(_) => unflushed |= conn_unflushed(&self.conns[slot]),
                }
            }
            if !unflushed || Instant::now() >= deadline {
                return;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

fn conn_unflushed(conn: &Option<Conn>) -> bool {
    conn.as_ref().is_some_and(|c| c.wpos < c.wbuf.len())
}
