//! Shard derivation and caching for `reader-round` agents.
//!
//! An agent never receives key lists over the wire: it reconstructs its
//! zone shard deterministically from `(tags, zones, deploy_seed,
//! coverage)` via [`pet_sim::multireader::shard_keys`] — the same
//! derivation the coordinator's in-process reference uses, so both sides
//! agree on every shard by construction. Rebuilding a shard (scatter +
//! hash + sort) costs `O(n log n)`, and a fleet session asks for the same
//! shard once per round, so both the key vectors and the passive
//! [`CodeRoster`]s are cached here. The caches are bounded by wholesale
//! eviction: distinct deployments per server are few, and a fleet session
//! hits exactly one entry thousands of times.

use crate::proto::ReaderRoundParams;
use pet_core::config::{PetConfig, TagMode};
use pet_core::oracle::CodeRoster;
use pet_hash::family::AnyFamily;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Distinct shard definitions kept before the cache evicts wholesale.
const MAX_CACHED: usize = 16;

/// Identity of a shard's key set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ShardId {
    tags: usize,
    zones: u32,
    deploy_seed: u64,
    coverage: Vec<u32>,
}

impl ShardId {
    fn of(p: &ReaderRoundParams) -> Self {
        Self {
            tags: p.tags,
            zones: p.zones,
            deploy_seed: p.deploy_seed,
            coverage: p.coverage.clone(),
        }
    }
}

/// Identity of a preloaded passive roster (keys + hashing parameters).
type RosterId = (ShardId, u32, Option<u64>);

/// Server-owned cache of shard key vectors and passive rosters.
#[derive(Debug, Default)]
pub(crate) struct ShardCache {
    keys: Mutex<HashMap<ShardId, Arc<Vec<u64>>>>,
    rosters: Mutex<HashMap<RosterId, Arc<CodeRoster>>>,
}

impl ShardCache {
    /// The shard's key vector (cached).
    pub(crate) fn shard_keys(&self, p: &ReaderRoundParams) -> Arc<Vec<u64>> {
        let id = ShardId::of(p);
        let mut map = self.keys.lock().expect("shard key cache poisoned");
        if let Some(keys) = map.get(&id) {
            return Arc::clone(keys);
        }
        let keys = Arc::new(pet_sim::multireader::shard_keys(
            p.tags,
            p.zones,
            p.deploy_seed,
            &p.coverage,
        ));
        if map.len() >= MAX_CACHED {
            map.clear();
        }
        map.insert(id, Arc::clone(&keys));
        keys
    }

    /// A passive preloaded roster for the shard (cached); the hot path of
    /// a fleet session in the default passive-tag mode.
    pub(crate) fn passive_roster(&self, p: &ReaderRoundParams) -> Arc<CodeRoster> {
        let id = (ShardId::of(p), p.height, p.manufacture_seed);
        {
            let map = self.rosters.lock().expect("shard roster cache poisoned");
            if let Some(roster) = map.get(&id) {
                return Arc::clone(roster);
            }
        }
        // Build outside the lock: roster construction hashes + sorts the
        // whole shard and must not serialize unrelated requests.
        let keys = self.shard_keys(p);
        let config = reader_round_config(p, TagMode::PassivePreloaded);
        let roster = Arc::new(CodeRoster::new(&keys, &config, AnyFamily::default()));
        let mut map = self.rosters.lock().expect("shard roster cache poisoned");
        if map.len() >= MAX_CACHED {
            map.clear();
        }
        map.insert(id, Arc::clone(&roster));
        roster
    }
}

/// The [`PetConfig`] a shard roster is built under. Only `height`,
/// `manufacture_seed`, and `tag_mode` influence a [`CodeRoster`]; every
/// other knob keeps its default.
pub(crate) fn reader_round_config(p: &ReaderRoundParams, mode: TagMode) -> PetConfig {
    let mut builder = PetConfig::builder().height(p.height).tag_mode(mode);
    if let Some(seed) = p.manufacture_seed {
        builder = builder.manufacture_seed(seed);
    }
    builder
        .build()
        .expect("reader-round parameters were validated at parse")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ReaderRoundParams {
        ReaderRoundParams {
            tags: 500,
            zones: 4,
            deploy_seed: 11,
            coverage: vec![0, 2],
            height: 32,
            manufacture_seed: None,
            path_bits: 0,
            round_seed: None,
        }
    }

    #[test]
    fn shard_keys_match_the_shared_derivation_and_are_shared() {
        let cache = ShardCache::default();
        let p = params();
        let a = cache.shard_keys(&p);
        let b = cache.shard_keys(&p);
        assert!(Arc::ptr_eq(&a, &b), "same shard must hit the cache");
        assert_eq!(
            *a,
            pet_sim::multireader::shard_keys(p.tags, p.zones, p.deploy_seed, &p.coverage)
        );
    }

    #[test]
    fn rosters_are_keyed_by_hashing_parameters() {
        let cache = ShardCache::default();
        let p = params();
        let a = cache.passive_roster(&p);
        assert!(Arc::ptr_eq(&a, &cache.passive_roster(&p)));
        let mut other_seed = params();
        other_seed.manufacture_seed = Some(99);
        let b = cache.passive_roster(&other_seed);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.codes(), b.codes(), "different seed, different codes");
    }

    #[test]
    fn cache_eviction_is_wholesale_and_bounded() {
        let cache = ShardCache::default();
        for seed in 0..(MAX_CACHED as u64 + 4) {
            let mut p = params();
            p.deploy_seed = seed;
            let _ = cache.shard_keys(&p);
        }
        assert!(cache.keys.lock().unwrap().len() <= MAX_CACHED);
    }
}
