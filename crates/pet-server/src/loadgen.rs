//! The closed-loop load generator behind `pet loadgen`.
//!
//! This used to live in the CLI; it moved into the server crate so the
//! benchmark harness (`repro bench-server`) and the CLI drive the exact
//! same traffic shape and write the exact same artifact. The generator is
//! *closed-loop with a window*: [`Plan::connections`] sockets are all
//! opened up front (that is what makes an N-connection claim real), split
//! across [`Plan::threads`] driver threads, and each connection keeps at
//! most [`Plan::pipeline`] requests in flight — a burst is written as one
//! syscall via [`Client::send_raw`], then its replies are collected in
//! order before the next burst goes out.
//!
//! Request ids are `t<connection>-<i>`, so the id *set* — and therefore
//! the reply set of a deterministic server — is a pure function of
//! (`requests`, `connections`, `tags`, `rounds`), independent of thread
//! count and pipeline depth. The digest is an XOR of per-reply FNV-1a
//! hashes: order-independent, so concurrent threads need no coordination,
//! equal reply sets compare equal, and the same digest must fall out of
//! the threaded and evented backends on the same plan — that equality is
//! the cross-backend equivalence gate in ci.sh.
//!
//! Sizing note: keep `connections × pipeline ≤ queue_capacity` when you
//! care about the digest. Overload refusals are honest replies and fold
//! into the digest too, but *which* request bounces depends on timing, so
//! an overloaded run is not reproducible.

use crate::client::Client;
use crate::json::Json;
use std::net::SocketAddr;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// What traffic to generate.
#[derive(Clone, Copy, Debug)]
pub struct Plan {
    /// Total requests across all connections.
    pub requests: usize,
    /// Concurrent connections, all opened before the first request.
    pub connections: usize,
    /// Driver threads; connections are dealt round-robin across them.
    pub threads: usize,
    /// Max requests in flight per connection (1 = classic closed loop).
    pub pipeline: usize,
    /// `tags` parameter of each estimate request.
    pub tags: usize,
    /// `rounds` parameter of each estimate request.
    pub rounds: u32,
}

impl Default for Plan {
    fn default() -> Self {
        Self {
            requests: 10_000,
            connections: 8,
            threads: 8,
            pipeline: 1,
            tags: 200,
            rounds: 4,
        }
    }
}

/// What came back.
#[derive(Default)]
pub struct BatchReport {
    /// Structurally valid `"ok":true` replies.
    pub ok: usize,
    /// Honest `overloaded` refusals.
    pub overloaded: usize,
    /// Other structured error replies.
    pub errors: usize,
    /// Requests that never got a reply (connection died or never opened).
    pub lost: usize,
    /// Replies that failed validation (wrong id, unparseable).
    pub malformed: usize,
    /// Connections that could not be established even with retries.
    pub connect_failures: usize,
    /// XOR of per-reply FNV-1a hashes — order-independent, so concurrent
    /// threads need no coordination and equal reply *sets* compare equal.
    pub digest: u64,
    /// Per-request latencies in nanoseconds (replied requests only),
    /// measured from the burst write to that reply's read.
    pub latency_ns: Vec<u64>,
    /// Wall time of the request phase (connect phase excluded).
    pub elapsed: Duration,
}

impl BatchReport {
    fn absorb(&mut self, other: &BatchReport) {
        self.ok += other.ok;
        self.overloaded += other.overloaded;
        self.errors += other.errors;
        self.lost += other.lost;
        self.malformed += other.malformed;
        self.connect_failures += other.connect_failures;
        self.digest ^= other.digest;
        self.latency_ns.extend_from_slice(&other.latency_ns);
    }

    /// Exact latency percentile (nearest-rank) over the replied requests.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        let mut sorted = self.latency_ns.clone();
        sorted.sort_unstable();
        percentile_of(&sorted, q)
    }
}

/// Nearest-rank percentile of an already-sorted sample (0 when empty).
#[must_use]
pub fn percentile_of(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// FNV-1a over little-endian u64 lanes with a length close: the same
/// mix-per-chunk structure as byte FNV but 8× fewer multiplies. The
/// generator hashes every reply on the measurement host, so this runs in
/// the throughput denominator.
fn fnv1a(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("exact chunk"));
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

/// Appends `v` in decimal — `write!` with a formatting template costs more
/// than the whole burst line assembly at loadgen rates.
fn push_decimal(out: &mut String, v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

/// Fires the whole batch: opens every connection, synchronizes all driver
/// threads on a barrier, then runs the windowed closed loop and merges the
/// per-thread reports. The clock starts when the barrier releases, so
/// `elapsed` (and any throughput derived from it) excludes connect time.
///
/// # Panics
///
/// Panics if the plan has zero `requests`, `connections`, `threads`, or
/// `pipeline` (the CLI validates first), or if a driver thread panics.
#[must_use]
pub fn run_batch(addr: SocketAddr, plan: &Plan) -> BatchReport {
    assert!(
        plan.requests > 0 && plan.connections > 0 && plan.threads > 0 && plan.pipeline > 0,
        "loadgen plan fields must be positive"
    );
    let threads = plan.threads.min(plan.connections);
    let barrier = Barrier::new(threads + 1);
    let mut started = Instant::now();
    let reports: Vec<BatchReport> = std::thread::scope(|scope| {
        let barrier = &barrier;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let conns: Vec<usize> = (t..plan.connections).step_by(threads).collect();
                scope.spawn(move || thread_batch(addr, plan, &conns, barrier))
            })
            .collect();
        barrier.wait();
        started = Instant::now();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread"))
            .collect()
    });
    let mut total = BatchReport::default();
    for r in &reports {
        total.absorb(r);
    }
    total.elapsed = started.elapsed();
    total
}

/// One connection's cursor within a driver thread.
struct ConnState {
    client: Client,
    /// Global connection index (names the `t<c>-<i>` id namespace).
    index: usize,
    /// Next request number on this connection.
    next: usize,
    /// Requests still to send on this connection.
    remaining: usize,
}

fn conn_quota(plan: &Plan, c: usize) -> usize {
    plan.requests / plan.connections + usize::from(c < plan.requests % plan.connections)
}

/// Opens a connection with a little patience: under a 10k-connection ramp
/// the accept backlog overflows transiently and a raw connect can bounce.
fn connect_with_retry(addr: SocketAddr) -> Option<Client> {
    for attempt in 0..40u32 {
        match Client::connect(addr) {
            Ok(client) => return Some(client),
            Err(_) => std::thread::sleep(Duration::from_millis(2 + u64::from(attempt))),
        }
    }
    None
}

fn thread_batch(
    addr: SocketAddr,
    plan: &Plan,
    conn_indices: &[usize],
    barrier: &Barrier,
) -> BatchReport {
    let mut report = BatchReport::default();
    let mut conns: Vec<ConnState> = Vec::with_capacity(conn_indices.len());
    for &c in conn_indices {
        let quota = conn_quota(plan, c);
        match connect_with_retry(addr) {
            Some(mut client) => {
                let _ = client.set_read_timeout(Some(Duration::from_secs(120)));
                conns.push(ConnState {
                    client,
                    index: c,
                    next: 0,
                    remaining: quota,
                });
            }
            None => {
                report.connect_failures += 1;
                report.lost += quota;
            }
        }
    }
    barrier.wait();

    // All three staging buffers are reused across bursts so the steady
    // state allocates nothing but the latency samples. Everything after
    // the id is the same on every line, so the tail is rendered once.
    let mut burst = String::new();
    let mut ids: Vec<String> = (0..plan.pipeline).map(|_| String::new()).collect();
    let mut reply = String::new();
    let line_tail = format!(
        "\",\"verb\":\"estimate\",\"tags\":{},\"rounds\":{}}}\n",
        plan.tags, plan.rounds
    );
    while conns.iter().any(|c| c.remaining > 0) {
        let mut dead: Vec<usize> = Vec::new();
        for (slot, conn) in conns.iter_mut().enumerate() {
            let depth = plan.pipeline.min(conn.remaining);
            if depth == 0 {
                continue;
            }
            burst.clear();
            for id in ids.iter_mut().take(depth) {
                id.clear();
                id.push('t');
                push_decimal(id, conn.index as u64);
                id.push('-');
                push_decimal(id, conn.next as u64);
                burst.push_str("{\"id\":\"");
                burst.push_str(id);
                burst.push_str(&line_tail);
                conn.next += 1;
            }
            conn.remaining -= depth;
            let sent = Instant::now();
            if conn.client.send_raw(burst.as_bytes()).is_err() {
                report.lost += depth + conn.remaining;
                dead.push(slot);
                continue;
            }
            for (k, id) in ids.iter().take(depth).enumerate() {
                if conn.client.recv_into(&mut reply).is_err() {
                    // Connection gone: the rest of the burst and everything
                    // still unsent on this connection is lost too.
                    report.lost += (depth - k) + conn.remaining;
                    dead.push(slot);
                    break;
                }
                report
                    .latency_ns
                    .push(u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX));
                match classify(&reply, id) {
                    Reply::Ok => report.ok += 1,
                    Reply::Overloaded => report.overloaded += 1,
                    Reply::OtherError => report.errors += 1,
                    Reply::Malformed => {
                        report.malformed += 1;
                        continue; // don't fold garbage into the digest
                    }
                }
                report.digest ^= fnv1a(reply.as_bytes());
            }
        }
        for slot in dead.into_iter().rev() {
            conns.remove(slot);
        }
    }
    report
}

enum Reply {
    Ok,
    Overloaded,
    OtherError,
    Malformed,
}

fn classify(reply: &str, expect_id: &str) -> Reply {
    // Fast path: `ok_reply` always renders `{"id":"<id>","ok":true,...`,
    // so a healthy reply is recognizable from its prefix alone — an order
    // of magnitude cheaper than a full parse, and the generator shares
    // its cores with the server under test. Anything that misses falls
    // through to the strict parser for honest classification.
    if let Some(rest) = reply
        .strip_prefix("{\"id\":\"")
        .and_then(|r| r.strip_prefix(expect_id))
    {
        if rest.starts_with("\",\"ok\":true") {
            return Reply::Ok;
        }
    }
    let Ok(v) = Json::parse(reply) else {
        return Reply::Malformed;
    };
    if v.get("id").and_then(Json::as_str) != Some(expect_id) {
        return Reply::Malformed;
    }
    match v.get("ok").and_then(Json::as_bool) {
        Some(true) => Reply::Ok,
        Some(false) => match v.get("error").and_then(Json::as_str) {
            Some("overloaded") => Reply::Overloaded,
            Some(_) => Reply::OtherError,
            None => Reply::Malformed,
        },
        None => Reply::Malformed,
    }
}

/// One row of the benchmark artifact: a (backend, connections, pipeline)
/// configuration and what it measured.
#[derive(Clone, Debug)]
pub struct BenchRun {
    /// Serving backend name (`"threaded"` / `"evented"`).
    pub backend: String,
    /// Total requests sent.
    pub requests: u64,
    /// Concurrent connections held open.
    pub connections: u64,
    /// Driver threads.
    pub threads: u64,
    /// Pipeline depth per connection.
    pub pipeline: u64,
    /// `tags` parameter of each request.
    pub tags: u64,
    /// `rounds` parameter of each request.
    pub rounds: u64,
    /// Wall time of the request phase, seconds.
    pub elapsed_s: f64,
    /// requests / elapsed_s.
    pub throughput_rps: f64,
    /// Reply counts, as in [`BatchReport`].
    pub ok: u64,
    /// Honest overload refusals.
    pub overloaded: u64,
    /// Other structured errors.
    pub errors: u64,
    /// Replies failing validation.
    pub malformed: u64,
    /// Requests with no reply.
    pub lost: u64,
    /// Latency percentiles in nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Worst observed.
    pub max_ns: u64,
    /// `{:#018x}` rendering of the reply-set digest.
    pub digest: String,
}

impl BenchRun {
    /// Builds the artifact row for a finished batch.
    #[must_use]
    pub fn new(backend: &str, plan: &Plan, report: &BatchReport) -> Self {
        let mut sorted = report.latency_ns.clone();
        sorted.sort_unstable();
        Self {
            backend: backend.to_string(),
            requests: plan.requests as u64,
            connections: plan.connections as u64,
            threads: plan.threads as u64,
            pipeline: plan.pipeline as u64,
            tags: plan.tags as u64,
            rounds: u64::from(plan.rounds),
            elapsed_s: report.elapsed.as_secs_f64(),
            throughput_rps: plan.requests as f64 / report.elapsed.as_secs_f64().max(1e-9),
            ok: report.ok as u64,
            overloaded: report.overloaded as u64,
            errors: report.errors as u64,
            malformed: report.malformed as u64,
            lost: report.lost as u64,
            p50_ns: percentile_of(&sorted, 0.50),
            p95_ns: percentile_of(&sorted, 0.95),
            p99_ns: percentile_of(&sorted, 0.99),
            max_ns: sorted.last().copied().unwrap_or(0),
            digest: format!("{:#018x}", report.digest),
        }
    }

    /// Merge key: one row per measured configuration.
    fn key(&self) -> (String, u64, u64) {
        (self.backend.clone(), self.connections, self.pipeline)
    }

    fn render(&self) -> String {
        format!(
            concat!(
                "{{\"backend\":\"{}\",",
                "\"requests\":{},\"connections\":{},\"threads\":{},\"pipeline\":{},",
                "\"tags\":{},\"rounds\":{},",
                "\"elapsed_s\":{:.6},\"throughput_rps\":{:.1},",
                "\"ok\":{},\"overloaded\":{},\"errors\":{},\"malformed\":{},\"lost\":{},",
                "\"latency_ns\":{{\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}},",
                "\"digest\":\"{}\"}}"
            ),
            crate::json::escape(&self.backend),
            self.requests,
            self.connections,
            self.threads,
            self.pipeline,
            self.tags,
            self.rounds,
            self.elapsed_s,
            self.throughput_rps,
            self.ok,
            self.overloaded,
            self.errors,
            self.malformed,
            self.lost,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.max_ns,
            self.digest,
        )
    }

    /// Parses a pre-v2 flat artifact (one run, no `backend` /
    /// `connections` / `pipeline` keys) with the defaults that benchmark
    /// actually ran: the threaded backend, one connection per thread, no
    /// pipelining. `requests` and `elapsed_s` are the only hard
    /// requirements.
    fn from_flat_json(v: &Json) -> Option<Self> {
        let field = |k: &str| v.get(k).and_then(Json::as_u64);
        let requests = field("requests")?;
        let elapsed_s = v.get("elapsed_s").and_then(Json::as_f64)?;
        let threads = field("threads").unwrap_or(8);
        let lat = |k: &str| {
            v.get("latency_ns")
                .and_then(|l| l.get(k))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        Some(Self {
            backend: v
                .get("backend")
                .and_then(Json::as_str)
                .unwrap_or("threaded")
                .to_string(),
            requests,
            connections: field("connections").unwrap_or(threads),
            threads,
            pipeline: field("pipeline").unwrap_or(1),
            tags: field("tags").unwrap_or(0),
            rounds: field("rounds").unwrap_or(0),
            elapsed_s,
            throughput_rps: v
                .get("throughput_rps")
                .and_then(Json::as_f64)
                .unwrap_or(requests as f64 / elapsed_s.max(1e-9)),
            ok: field("ok").unwrap_or(requests),
            overloaded: field("overloaded").unwrap_or(0),
            errors: field("errors").unwrap_or(0),
            malformed: field("malformed").unwrap_or(0),
            lost: field("lost").unwrap_or(0),
            p50_ns: lat("p50"),
            p95_ns: lat("p95"),
            p99_ns: lat("p99"),
            max_ns: lat("max"),
            digest: v
                .get("digest")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        })
    }

    fn from_json(v: &Json) -> Option<Self> {
        let field = |k: &str| v.get(k).and_then(Json::as_u64);
        let lat = v.get("latency_ns")?;
        Some(Self {
            backend: v.get("backend").and_then(Json::as_str)?.to_string(),
            requests: field("requests")?,
            connections: field("connections")?,
            threads: field("threads")?,
            pipeline: field("pipeline")?,
            tags: field("tags")?,
            rounds: field("rounds")?,
            elapsed_s: v.get("elapsed_s").and_then(Json::as_f64)?,
            throughput_rps: v.get("throughput_rps").and_then(Json::as_f64)?,
            ok: field("ok")?,
            overloaded: field("overloaded")?,
            errors: field("errors")?,
            malformed: field("malformed")?,
            lost: field("lost")?,
            p50_ns: lat.get("p50").and_then(Json::as_u64)?,
            p95_ns: lat.get("p95").and_then(Json::as_u64)?,
            p99_ns: lat.get("p99").and_then(Json::as_u64)?,
            max_ns: lat.get("max").and_then(Json::as_u64)?,
            digest: v.get("digest").and_then(Json::as_str)?.to_string(),
        })
    }
}

/// Version tag of the BENCH_server.json layout written by
/// [`write_bench_json`] (v2 added `backend`/`connections`/`pipeline` and
/// turned the file into a merged `runs` array).
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// The (backend, connections, pipeline) merge key of a bench row.
type RowKey = (String, u64, u64);

/// Merge key of a raw JSON row, when extractable.
fn raw_key(item: &Json) -> Option<RowKey> {
    Some((
        item.get("backend").and_then(Json::as_str)?.to_string(),
        item.get("connections").and_then(Json::as_u64)?,
        item.get("pipeline").and_then(Json::as_u64)?,
    ))
}

/// Writes (or merges into) the machine-readable benchmark artifact.
///
/// The file holds one row per (backend, connections, pipeline)
/// configuration; rewriting a configuration replaces its row and leaves
/// the others intact, so threaded and evented measurements accumulate in
/// one artifact — a partial rerun never loses rows it didn't measure.
/// Rows a future (or past) schema dialect that [`BenchRun::from_json`]
/// cannot parse are preserved verbatim, keyed when their (backend,
/// connections, pipeline) fields are extractable. A pre-v2 flat file is
/// migrated into a keyed v2 row instead of being discarded, so seed-era
/// history survives the first rerun.
///
/// # Errors
///
/// Returns the underlying I/O error from reading or writing the file.
pub fn write_bench_json(path: &str, run: &BenchRun) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    // (sort key, keyed?, rendered row). Unkeyed passthrough rows sort
    // after every keyed row, in file order.
    let mut rows: Vec<(Option<RowKey>, String)> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        if let Ok(v) = Json::parse(existing.trim()) {
            let is_v2 =
                v.get("schema_version").and_then(Json::as_u64) == Some(BENCH_SCHEMA_VERSION);
            if is_v2 {
                for item in v.get("runs").and_then(Json::as_arr).unwrap_or(&[]) {
                    match BenchRun::from_json(item) {
                        Some(parsed) => {
                            if parsed.key() != run.key() {
                                rows.push((Some(parsed.key()), parsed.render()));
                            }
                        }
                        // Not our dialect: keep the row byte-equivalent
                        // rather than silently dropping someone's data.
                        None => {
                            let key = raw_key(item);
                            if key.as_ref() != Some(&run.key()) {
                                rows.push((key, item.render()));
                            }
                        }
                    }
                }
            } else if let Some(flat) = BenchRun::from_flat_json(&v) {
                if flat.key() != run.key() {
                    rows.push((Some(flat.key()), flat.render()));
                }
            }
        }
    }
    rows.push((Some(run.key()), run.render()));
    rows.sort_by(|a, b| match (&a.0, &b.0) {
        (Some(x), Some(y)) => x.cmp(y),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => std::cmp::Ordering::Equal,
    });
    let body: Vec<String> = rows.into_iter().map(|(_, text)| text).collect();
    let json = format!(
        "{{\"benchmark\":\"pet-server-loadgen\",\"schema_version\":{},\"runs\":[{}]}}\n",
        BENCH_SCHEMA_VERSION,
        body.join(",")
    );
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotas_cover_every_request_exactly_once() {
        let plan = Plan {
            requests: 103,
            connections: 10,
            ..Plan::default()
        };
        let total: usize = (0..plan.connections).map(|c| conn_quota(&plan, c)).sum();
        assert_eq!(total, plan.requests);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_of(&sorted, 0.50), 50);
        assert_eq!(percentile_of(&sorted, 0.99), 99);
        assert_eq!(percentile_of(&sorted, 1.0), 100);
        assert_eq!(percentile_of(&[], 0.5), 0);
    }

    #[test]
    fn bench_json_merges_by_configuration() {
        let dir = std::env::temp_dir().join(format!("pet-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_server.json");
        let path = path.to_str().unwrap();
        let plan = Plan::default();
        let mut report = BatchReport {
            ok: plan.requests,
            elapsed: Duration::from_millis(250),
            ..BatchReport::default()
        };
        report.latency_ns = vec![1_000; 16];

        write_bench_json(path, &BenchRun::new("threaded", &plan, &report)).unwrap();
        write_bench_json(path, &BenchRun::new("evented", &plan, &report)).unwrap();
        // Same key again: replaces, not appends.
        report.elapsed = Duration::from_millis(125);
        write_bench_json(path, &BenchRun::new("evented", &plan, &report)).unwrap();

        let text = std::fs::read_to_string(path).unwrap();
        let v = Json::parse(text.trim()).unwrap();
        assert_eq!(v.get("schema_version").and_then(Json::as_u64), Some(2));
        let runs = v.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2);
        let evented = runs
            .iter()
            .find(|r| r.get("backend").and_then(Json::as_str) == Some("evented"))
            .unwrap();
        assert_eq!(evented.get("elapsed_s").and_then(Json::as_f64), Some(0.125));
        assert_eq!(
            evented.get("connections").and_then(Json::as_u64),
            Some(plan.connections as u64)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression: a partial rerun must never lose rows it didn't measure
    /// — neither rows this dialect can't parse (preserved verbatim) nor a
    /// pre-v2 flat file (migrated into a keyed v2 row, not discarded).
    #[test]
    fn bench_json_partial_rerun_preserves_foreign_and_flat_rows() {
        let dir =
            std::env::temp_dir().join(format!("pet-bench-json-preserve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let plan = Plan::default();
        let mut report = BatchReport {
            ok: plan.requests,
            elapsed: Duration::from_millis(250),
            ..BatchReport::default()
        };
        report.latency_ns = vec![1_000; 16];

        // A v2 file holding one parseable row and one row from a richer
        // future dialect (extra field, missing `latency_ns` so
        // `from_json` rejects it).
        let path = dir.join("BENCH_server.json");
        let path = path.to_str().unwrap();
        write_bench_json(path, &BenchRun::new("threaded", &plan, &report)).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        let foreign =
            "{\"backend\":\"evented\",\"connections\":512,\"pipeline\":8,\"cpu_pct\":93.5}";
        let text = text.replace("\"runs\":[", &format!("\"runs\":[{foreign},"));
        std::fs::write(path, text).unwrap();

        // Partial rerun of the threaded arm only.
        report.elapsed = Duration::from_millis(125);
        write_bench_json(path, &BenchRun::new("threaded", &plan, &report)).unwrap();
        let v = Json::parse(std::fs::read_to_string(path).unwrap().trim()).unwrap();
        let runs = v.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2, "foreign evented row must survive");
        let evented = runs
            .iter()
            .find(|r| r.get("backend").and_then(Json::as_str) == Some("evented"))
            .expect("foreign row preserved");
        assert_eq!(evented.get("cpu_pct").and_then(Json::as_f64), Some(93.5));
        assert_eq!(evented.get("connections").and_then(Json::as_u64), Some(512));

        // A pre-v2 flat file: the rerun migrates it instead of clobbering.
        let flat_path = dir.join("BENCH_server_flat.json");
        let flat_path = flat_path.to_str().unwrap();
        std::fs::write(
            flat_path,
            "{\"benchmark\":\"pet-server-loadgen\",\"requests\":20000,\"threads\":4,\
             \"elapsed_s\":0.5,\"latency_ns\":{\"p50\":900,\"p95\":2000,\"p99\":3000,\
             \"max\":9000},\"digest\":\"0xdead\"}\n",
        )
        .unwrap();
        write_bench_json(flat_path, &BenchRun::new("evented", &plan, &report)).unwrap();
        let v = Json::parse(std::fs::read_to_string(flat_path).unwrap().trim()).unwrap();
        let runs = v.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2, "flat row must migrate, not vanish");
        let migrated = runs
            .iter()
            .find(|r| r.get("backend").and_then(Json::as_str) == Some("threaded"))
            .expect("flat row migrated with threaded defaults");
        assert_eq!(migrated.get("requests").and_then(Json::as_u64), Some(20000));
        assert_eq!(migrated.get("connections").and_then(Json::as_u64), Some(4));
        assert_eq!(migrated.get("pipeline").and_then(Json::as_u64), Some(1));
        assert_eq!(
            migrated.get("throughput_rps").and_then(Json::as_f64),
            Some(40000.0)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn classify_checks_id_echo_and_error_shape() {
        assert!(matches!(
            classify(r#"{"id":"a","ok":true}"#, "a"),
            Reply::Ok
        ));
        assert!(matches!(
            classify(r#"{"id":"a","ok":true}"#, "b"),
            Reply::Malformed
        ));
        assert!(matches!(
            classify(r#"{"id":"a","ok":false,"error":"overloaded"}"#, "a"),
            Reply::Overloaded
        ));
        assert!(matches!(
            classify(r#"{"id":"a","ok":false,"error":"internal"}"#, "a"),
            Reply::OtherError
        ));
        assert!(matches!(classify("not json", "a"), Reply::Malformed));
    }
}
