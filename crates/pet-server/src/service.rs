//! The transport-agnostic service core.
//!
//! Everything the protocol *means* lives here — verb dispatch, deadline
//! enforcement, deterministic seeding, RED metrics, the roster caches —
//! and nothing about how bytes arrive. The two serving backends
//! ([`crate::server`]'s thread-per-connection driver and
//! [`crate::event_loop`]'s sharded readiness loop) are thin transports
//! over one [`ServiceCore`]: each feeds raw request lines in and writes
//! the returned reply lines out. Because every reply string is produced
//! by this module from the request alone (plus the core's deterministic
//! seed derivation), the two backends answer the same request stream with
//! byte-identical replies — the property `pet loadgen
//! --verify-deterministic` and the cross-backend battery pin.
//!
//! The split of responsibilities:
//!
//! - [`ServiceCore::handle_line`] turns one raw line into a [`Dispatch`]:
//!   an immediate reply (control verbs, parse errors, refusals), a
//!   shutdown handoff, or a work item the backend must queue.
//! - The *backend* owns queueing/backpressure (how many parsed-but-
//!   unexecuted work items may exist) and calls
//!   [`ServiceCore::refuse_overloaded`] when its bound is hit, and
//!   [`ServiceCore::execute_work`] — which re-checks the deadline against
//!   the enqueue time — for each item it accepted.
//! - Shutdown is cooperative: `dispatch` flips the shared flag (so every
//!   other connection/shard starts refusing work immediately), and hands
//!   the backend the ack line to emit once *it* has drained.

use crate::metrics::ServerMetrics;
use crate::proto::{
    error_reply, ok_reply, parse_request, ErrorCode, EstimateParams, MonitorParams,
    ReaderRoundParams, Request, RobustnessRequest, Verb,
};
use crate::shard::{reader_round_config, ShardCache};
use pet_core::bits::BitString;
use pet_core::config::TagMode;
use pet_core::front::Estimator;
use pet_core::monitor::{Monitor, MonitorConfig};
use pet_core::oracle::{CodeRoster, ResponderOracle, RoundStart};
use pet_hash::family::AnyFamily;
use pet_obs::Summary;
use pet_sim::cache::RosterCache;
use pet_sim::experiments::robustness;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Longest request line the server will read before answering
/// `bad_request` and dropping the connection (matches the JSON parser's
/// input bound).
pub const MAX_LINE_BYTES: usize = crate::json::MAX_INPUT_BYTES;

/// Which serving transport drives the [`ServiceCore`].
///
/// Both speak the identical wire protocol and produce byte-identical
/// replies for the same request stream; they differ only in how
/// connections are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Thread per connection in front of a bounded worker pool — simple,
    /// debuggable, and the reference implementation the evented backend is
    /// verified against. Kept as the default for embedders.
    #[default]
    Threaded,
    /// Sharded non-blocking event loop: N shards each own a slice of the
    /// connections, sweep them with non-blocking reads/writes, and execute
    /// work inline — no per-request thread handoffs, requests pipelined
    /// per connection. Scales to tens of thousands of connections.
    Evented,
}

impl Backend {
    /// The stable lower-case name (used by `--backend` and bench JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Threaded => "threaded",
            Backend::Evented => "evented",
        }
    }

    /// Parses a `--backend` flag value.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "threaded" => Some(Backend::Threaded),
            "evented" => Some(Backend::Evented),
            _ => None,
        }
    }
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`crate::server::ServerHandle::addr`]).
    pub addr: String,
    /// Serving transport. [`Backend::Threaded`] is the default; pass
    /// [`Backend::Evented`] for the sharded event loop.
    pub backend: Backend,
    /// Concurrency width: worker threads on the threaded backend, shard
    /// event loops on the evented one.
    pub workers: usize,
    /// Bound on parsed-but-unexecuted work items; pushes beyond it get
    /// `overloaded`. (On the threaded backend this is the job queue's
    /// capacity; on the evented backend a global pending-job budget shared
    /// by all shards.)
    pub queue_capacity: usize,
    /// Deterministic mode: requests without an explicit `seed` derive one
    /// from the request id alone, so equal requests produce byte-identical
    /// replies across server restarts.
    pub deterministic: bool,
    /// Deadline applied to requests that do not carry `deadline_ms`.
    pub default_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            backend: Backend::default(),
            workers: 4,
            queue_capacity: 64,
            deterministic: false,
            default_deadline: None,
        }
    }
}

/// What a transport must do with one request line, as decided by
/// [`ServiceCore::handle_line`].
pub enum Dispatch {
    /// Write this reply now; nothing to schedule.
    Reply(String),
    /// The `shutdown` verb: the shared shutting-down flag is already set.
    /// The backend must drain its in-flight work, then write `ack` (and
    /// record the latency via [`ServiceCore::record_ok`]), then close the
    /// listener.
    Shutdown {
        /// The `"drained":true` ack line to emit after the drain.
        ack: String,
    },
    /// A work item the backend should queue (subject to its capacity
    /// bound) and later run through [`ServiceCore::execute_work`].
    Work(Box<Request>),
}

/// The shared, transport-agnostic service state: one per server, shared by
/// every connection/shard/worker of whichever backend drives it.
pub struct ServiceCore {
    metrics: ServerMetrics,
    cache: RosterCache,
    shards: ShardCache,
    deterministic: bool,
    /// XOR'd into id-derived seeds outside deterministic mode, so repeated
    /// runs do not accidentally correlate.
    seed_entropy: u64,
    default_deadline: Option<Duration>,
    shutting_down: AtomicBool,
}

impl ServiceCore {
    /// Builds the core from the shared configuration fields.
    #[must_use]
    pub fn new(config: &ServerConfig) -> Self {
        let seed_entropy = if config.deterministic {
            0
        } else {
            // Per-process entropy without any new dependency: the std
            // hasher is randomly keyed per process.
            use std::hash::{BuildHasher, Hasher};
            std::collections::hash_map::RandomState::new()
                .build_hasher()
                .finish()
        };
        Self {
            metrics: ServerMetrics::default(),
            cache: RosterCache::default(),
            shards: ShardCache::default(),
            deterministic: config.deterministic,
            seed_entropy,
            default_deadline: config.default_deadline,
            shutting_down: AtomicBool::new(false),
        }
    }

    /// The server's RED metric store.
    #[must_use]
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// A snapshot of the RED metrics.
    #[must_use]
    pub fn snapshot(&self) -> Summary {
        self.metrics.snapshot()
    }

    /// Whether the core runs in deterministic mode.
    #[must_use]
    pub fn deterministic(&self) -> bool {
        self.deterministic
    }

    /// Flips the shared shutting-down flag: every subsequent work verb is
    /// refused with `shutting_down` on all connections.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has begun.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Handles one raw request line (trailing newline bytes optional).
    /// Returns `None` for blank lines (tolerated keepalives), otherwise the
    /// action the transport must take.
    pub fn handle_line(&self, raw: &[u8]) -> Option<Dispatch> {
        let Ok(text) = std::str::from_utf8(raw) else {
            self.metrics.error(ErrorCode::BadRequest);
            return Some(Dispatch::Reply(error_reply(
                None,
                ErrorCode::BadRequest,
                Some("request is not UTF-8"),
            )));
        };
        let line = text.trim();
        if line.is_empty() {
            return None;
        }
        match parse_request(line) {
            Err(e) => {
                self.metrics.error(ErrorCode::BadRequest);
                Some(Dispatch::Reply(error_reply(
                    e.id.as_deref(),
                    ErrorCode::BadRequest,
                    Some(&e.detail),
                )))
            }
            Ok(request) => Some(self.dispatch(request)),
        }
    }

    /// Routes one parsed request: control verbs answered here, work verbs
    /// handed back for the transport to queue.
    pub fn dispatch(&self, request: Request) -> Dispatch {
        self.metrics.request(request.verb.name());
        match &request.verb {
            Verb::TelemetrySnapshot => {
                let started = Instant::now();
                let snapshot = self.metrics.snapshot().to_json();
                let reply = ok_reply(
                    &request.id,
                    "telemetry-snapshot",
                    &format!("\"snapshot\":{snapshot}"),
                );
                self.metrics.ok(started.elapsed());
                Dispatch::Reply(reply)
            }
            Verb::Shutdown => {
                // Flag first: by the time the backend starts draining, no
                // connection anywhere can enqueue more work.
                self.begin_shutdown();
                Dispatch::Shutdown {
                    ack: ok_reply(&request.id, "shutdown", "\"drained\":true"),
                }
            }
            Verb::Estimate(_) | Verb::Robustness(_) | Verb::ReaderRound(_) | Verb::Monitor(_) => {
                if self.is_shutting_down() {
                    return Dispatch::Reply(self.refuse_shutting_down(&request.id));
                }
                Dispatch::Work(Box::new(request))
            }
        }
    }

    /// The structured refusal for a work item that hit the backend's
    /// capacity bound (records the overload metrics).
    #[must_use]
    pub fn refuse_overloaded(&self, id: &str) -> String {
        self.metrics.error(ErrorCode::Overloaded);
        error_reply(Some(id), ErrorCode::Overloaded, None)
    }

    /// The structured refusal for work arriving after shutdown began
    /// (records the metric).
    #[must_use]
    pub fn refuse_shutting_down(&self, id: &str) -> String {
        self.metrics.error(ErrorCode::ShuttingDown);
        error_reply(Some(id), ErrorCode::ShuttingDown, None)
    }

    /// The structured refusal (plus metric) for a line that exceeded
    /// [`MAX_LINE_BYTES`]; the transport must drop the connection after
    /// writing it — resynchronizing mid-stream is guesswork.
    #[must_use]
    pub fn refuse_oversized(&self) -> String {
        self.metrics.error(ErrorCode::BadRequest);
        error_reply(
            None,
            ErrorCode::BadRequest,
            Some(&format!("request line exceeds {MAX_LINE_BYTES} bytes")),
        )
    }

    /// Records a successful control-plane reply (the shutdown ack) with
    /// its handling latency.
    pub fn record_ok(&self, latency: Duration) {
        self.metrics.ok(latency);
    }

    /// Runs one queued work item: enforces its deadline against the time
    /// it was enqueued, executes it, and records the outcome. Always
    /// returns the reply line.
    #[must_use]
    pub fn execute_work(&self, request: &Request, enqueued: Instant) -> String {
        let deadline = request.deadline.or(self.default_deadline);
        if deadline.is_some_and(|d| enqueued.elapsed() > d) {
            self.metrics.error(ErrorCode::DeadlineExceeded);
            return error_reply(Some(&request.id), ErrorCode::DeadlineExceeded, None);
        }
        let reply = self.execute(request);
        self.metrics.ok(enqueued.elapsed());
        reply
    }

    fn execute(&self, request: &Request) -> String {
        match &request.verb {
            Verb::Estimate(params) => self.execute_estimate(&request.id, params),
            Verb::Robustness(params) => execute_robustness(&request.id, params),
            Verb::ReaderRound(params) => self.execute_reader_round(&request.id, params),
            Verb::Monitor(params) => self.execute_monitor(&request.id, params),
            // Control verbs never reach a work queue.
            Verb::TelemetrySnapshot | Verb::Shutdown => error_reply(
                Some(&request.id),
                ErrorCode::Internal,
                Some("misrouted verb"),
            ),
        }
    }

    fn execute_estimate(&self, id: &str, params: &EstimateParams) -> String {
        let seed = params
            .seed
            .unwrap_or_else(|| seed_for_id(id) ^ self.seed_entropy);
        let estimator = Estimator::new(params.config);
        let rounds = params.rounds.unwrap_or_else(|| params.config.rounds());
        let mut bank = self
            .cache
            .sequential_bank(params.tags, &params.config, estimator.family());
        let mut rng = StdRng::seed_from_u64(seed);
        match estimator.try_run_bank(&mut bank, rounds, &mut rng) {
            Ok(report) => {
                // This is the serving hot path: render the whole reply in
                // one buffer instead of composing through ok_reply, which
                // would cost two more intermediate strings per request.
                use std::fmt::Write as _;
                let mut out = String::with_capacity(192);
                let _ = write!(
                    out,
                    "{{\"id\":\"{}\",\"ok\":true,\"verb\":\"estimate\",\"estimate\":{:?},\"rounds\":{},\"mean_prefix_len\":{:?},\"slots\":{},\"seed\":{},\"deterministic\":{}",
                    crate::json::escape(id),
                    report.estimate,
                    report.rounds,
                    report.mean_prefix_len,
                    report.metrics.slots,
                    seed,
                    self.deterministic || params.seed.is_some(),
                );
                if let Some(phy) = report.phy {
                    self.metrics.phy(&phy);
                    let _ = write!(
                        out,
                        ",\"wall_ms\":{:?},\"energy_uj\":{:?}",
                        phy.wall_ms, phy.energy_uj
                    );
                }
                out.push('}');
                out
            }
            Err(e) => error_reply(Some(id), ErrorCode::Internal, Some(&e.to_string())),
        }
    }

    /// Executes one hash-synchronized estimating round against this
    /// agent's zone shard: reconstructs the shard deterministically
    /// (cached), counts raw responders for *every* prefix length
    /// `1..=height` of the announced path, and reports the counts plus the
    /// shard population. The controller applies per-reader channel models
    /// and runs the adaptive binary search itself — raw counts are what
    /// keep the fleet merge bit-for-bit equal to the in-process `pet-sim`
    /// controller, mitigation re-probes included.
    fn execute_reader_round(&self, id: &str, params: &ReaderRoundParams) -> String {
        let path = BitString::from_bits(params.path_bits, params.height)
            .expect("path validated against height at parse");
        let start = RoundStart {
            path,
            seed: params.round_seed,
        };
        let (population, counts) = if params.round_seed.is_some() {
            // Active-tag mode: codes depend on the per-round seed, so the
            // roster is rebuilt from the cached shard keys each round.
            let keys = self.shards.shard_keys(params);
            let config = reader_round_config(params, TagMode::ActivePerRound);
            let mut roster = CodeRoster::new(&keys, &config, AnyFamily::default());
            roster.begin_round(&start);
            let counts: Vec<u64> = (1..=params.height)
                .map(|len| roster.count_prefix(&start.path, len))
                .collect();
            (roster.population(), counts)
        } else {
            let roster = self.shards.passive_roster(params);
            let counts: Vec<u64> = (1..=params.height)
                .map(|len| roster.count_prefix(&start.path, len))
                .collect();
            (roster.population(), counts)
        };
        let mut body = format!(
            "\"population\":{population},\"height\":{},\"counts\":[",
            params.height
        );
        for (i, c) in counts.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&c.to_string());
        }
        body.push(']');
        ok_reply(id, "reader-round", &body)
    }

    /// Runs one bounded monitoring subscription: a synthetic population is
    /// churned by a [`ChurnSchedule`] and re-estimated `updates` times
    /// through [`pet_core::monitor::Monitor`]. The reply is a single
    /// string carrying one `"verb":"monitor-delta"` line per update plus a
    /// final `"verb":"monitor"` summary line, joined by interior newlines —
    /// both transports write reply strings verbatim (appending one final
    /// newline), so the client sees `updates + 1` lines for the one
    /// request. Determinism is inherited from [`seed_for_id`]: the whole
    /// stream is a pure function of the request in deterministic mode.
    fn execute_monitor(&self, id: &str, params: &MonitorParams) -> String {
        use pet_tags::dynamics::{ChurnSchedule, Timeline};
        use pet_tags::population::TagPopulation;

        let seed = params
            .seed
            .unwrap_or_else(|| seed_for_id(id) ^ self.seed_entropy);
        let mut monitor = match Monitor::new(MonitorConfig {
            config: params.config,
            rounds: params.rounds,
            window: params.window,
            alarm_fraction: params.alarm_fraction,
            reference: None,
            base_seed: seed,
        }) {
            Ok(m) => m,
            // Parse-time validation mirrors the monitor's own; reaching
            // this arm means the two drifted apart.
            Err(e) => return error_reply(Some(id), ErrorCode::Internal, Some(&e.to_string())),
        };
        let schedule = ChurnSchedule {
            rate: params.churn_rate,
            burst_at: params.burst_at.map(|u| u as usize),
            burst_size: params.burst_size,
        };
        let mut timeline = Timeline::new(TagPopulation::sequential(params.tags));

        use std::fmt::Write as _;
        let escaped = crate::json::escape(id);
        let mut out = String::with_capacity(params.updates as usize * 192 + 192);
        let mut alarms = 0u32;
        let mut first_alarm: Option<u64> = None;
        let mut final_estimate = 0.0f64;
        let mut phy_total: Option<pet_phy::PhyReport> = None;
        for update in 0..params.updates as usize {
            for event in schedule.events_at(update) {
                timeline.apply(event);
            }
            let keys: Vec<u64> = timeline.population().keys().collect();
            let u = match monitor.observe_keys(&keys) {
                Ok(u) => u,
                Err(e) => return error_reply(Some(id), ErrorCode::Internal, Some(&e.to_string())),
            };
            if u.alarm {
                alarms += 1;
                first_alarm.get_or_insert(u.index);
            }
            final_estimate = u.windowed;
            if let Some(p) = u.phy {
                let t = phy_total.get_or_insert_with(Default::default);
                t.wall_ms += p.wall_ms;
                t.reader_tx_uj += p.reader_tx_uj;
                t.reader_rx_uj += p.reader_rx_uj;
                t.tag_uj += p.tag_uj;
                t.energy_uj += p.energy_uj;
            }
            let _ = writeln!(
                out,
                "{{\"id\":\"{escaped}\",\"ok\":true,\"verb\":\"monitor-delta\",\"update\":{},\"estimate\":{:?},\"windowed\":{:?},\"delta\":{:?},\"p_value\":{:?},\"population\":{},\"alarm\":{}}}",
                u.index,
                u.estimate,
                u.windowed,
                u.delta,
                u.p_value,
                keys.len(),
                u.alarm,
            );
        }
        let reference = monitor.reference().unwrap_or(0.0);
        let _ = write!(
            out,
            "{{\"id\":\"{escaped}\",\"ok\":true,\"verb\":\"monitor\",\"updates\":{},\"window\":{},\"reference\":{:?},\"alarms\":{alarms},\"first_alarm\":{},\"final_estimate\":{:?},\"seed\":{seed},\"deterministic\":{}",
            params.updates,
            params.window,
            reference,
            first_alarm.map_or("null".to_string(), |a| a.to_string()),
            final_estimate,
            self.deterministic || params.seed.is_some(),
        );
        if let Some(p) = phy_total {
            self.metrics.phy(&p);
            let _ = write!(
                out,
                ",\"wall_ms\":{:?},\"energy_uj\":{:?}",
                p.wall_ms, p.energy_uj
            );
        }
        out.push('}');
        out
    }
}

/// FNV-1a over the request id — the deterministic-mode seed derivation.
#[must_use]
pub fn seed_for_id(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn execute_robustness(id: &str, params: &RobustnessRequest) -> String {
    let rows = robustness::sweep(&robustness::RobustnessParams {
        n: params.tags,
        rounds: params.rounds,
        runs: params.runs,
        seed: params.seed,
        miss_rates: params.miss_rates.clone(),
        false_busy: params.false_busy,
        probes: params.probes,
    });
    let mut body = String::from("\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"miss\":{:?},\"false_busy\":{:?},\"mitigated\":{},\"mean_ratio\":{:?},\"rel_bias\":{:?},\"normalized_rmse\":{:?},\"mean_slots_per_round\":{:?}}}",
            row.miss,
            row.false_busy,
            row.mitigated,
            row.mean_ratio,
            row.rel_bias,
            row.normalized_rmse,
            row.mean_slots_per_round,
        ));
    }
    body.push(']');
    ok_reply(id, "robustness", &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_is_stable_and_spread() {
        // Pinned: deterministic mode promises the same id → the same seed
        // across builds and sessions.
        assert_eq!(seed_for_id(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(seed_for_id("r1"), {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in b"r1" {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        });
        assert_ne!(seed_for_id("a"), seed_for_id("b"));
        assert_ne!(seed_for_id("t0-1"), seed_for_id("t1-0"));
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.workers > 0);
        assert!(c.queue_capacity > 0);
        assert!(!c.deterministic);
        assert_eq!(c.backend, Backend::Threaded);
        assert!(c.addr.ends_with(":0"), "ephemeral port by default");
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [Backend::Threaded, Backend::Evented] {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("asynchronous"), None);
    }

    #[test]
    fn blank_and_garbage_lines_classify() {
        let core = ServiceCore::new(&ServerConfig {
            deterministic: true,
            ..ServerConfig::default()
        });
        assert!(core.handle_line(b"  \r\n").is_none());
        match core.handle_line(b"not json\n") {
            Some(Dispatch::Reply(r)) => assert!(r.contains("bad_request"), "{r}"),
            _ => panic!("garbage must reply inline"),
        }
        match core.handle_line(&[0xff, 0xfe, b'\n']) {
            Some(Dispatch::Reply(r)) => assert!(r.contains("bad_request"), "{r}"),
            _ => panic!("non-UTF-8 must reply inline"),
        }
        match core.handle_line(br#"{"id":"w","verb":"estimate","tags":10}"#) {
            Some(Dispatch::Work(req)) => assert_eq!(req.id, "w"),
            _ => panic!("work verbs must be queued"),
        }
        core.begin_shutdown();
        match core.handle_line(br#"{"id":"w2","verb":"estimate","tags":10}"#) {
            Some(Dispatch::Reply(r)) => assert!(r.contains("shutting_down"), "{r}"),
            _ => panic!("work after shutdown must be refused"),
        }
    }

    #[test]
    fn monitor_streams_deltas_then_summary_deterministically() {
        let core = ServiceCore::new(&ServerConfig {
            deterministic: true,
            ..ServerConfig::default()
        });
        let line = br#"{"id":"m1","verb":"monitor","tags":300,"updates":5,"window":2,"rounds":8,"churn_rate":3,"burst_at":3,"burst_size":200,"epsilon":0.2,"delta":0.2}"#;
        let Some(Dispatch::Work(req)) = core.handle_line(line) else {
            panic!("monitor must be queued as work");
        };
        let reply = core.execute_work(&req, Instant::now());
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines.len(), 6, "5 deltas + 1 summary:\n{reply}");
        for (i, l) in lines.iter().take(5).enumerate() {
            assert!(
                l.contains("\"verb\":\"monitor-delta\"") && l.contains(&format!("\"update\":{i}")),
                "{l}"
            );
            assert!(l.contains("\"id\":\"m1\""), "{l}");
        }
        assert!(lines[5].contains("\"verb\":\"monitor\""), "{}", lines[5]);
        assert!(lines[5].contains("\"deterministic\":true"), "{}", lines[5]);
        // The burst drops 200 of 300 tags; with alarm_fraction 0.5 and a
        // window of 2 the alarm must have fired by the last update.
        assert!(lines[4].contains("\"population\":100"), "{}", lines[4]);
        assert!(lines[5].contains("\"alarms\":"), "{}", lines[5]);
        // Deterministic mode: a second core answers byte-identically.
        let core2 = ServiceCore::new(&ServerConfig {
            deterministic: true,
            ..ServerConfig::default()
        });
        let Some(Dispatch::Work(req2)) = core2.handle_line(line) else {
            panic!("monitor must be queued as work");
        };
        assert_eq!(reply, core2.execute_work(&req2, Instant::now()));
    }

    #[test]
    fn phy_profile_prices_estimate_and_monitor_replies() {
        let core = ServiceCore::new(&ServerConfig {
            deterministic: true,
            ..ServerConfig::default()
        });
        let run = |line: &[u8]| {
            let Some(Dispatch::Work(req)) = core.handle_line(line) else {
                panic!("work verbs must be queued");
            };
            core.execute_work(&req, Instant::now())
        };
        // Without the knob the reply shape is unchanged.
        let plain = run(br#"{"id":"e0","verb":"estimate","tags":200,"rounds":16}"#);
        assert!(!plain.contains("wall_ms"), "{plain}");
        // With it, estimate replies price the run...
        let priced = run(br#"{"id":"e1","verb":"estimate","tags":200,"rounds":16,"phy":"gen2"}"#);
        assert!(
            priced.contains("\"wall_ms\":") && priced.contains("\"energy_uj\":"),
            "{priced}"
        );
        // ...identically in everything else (same id → same derived seed).
        let plain1 = run(br#"{"id":"e1","verb":"estimate","tags":200,"rounds":16}"#);
        let strip = |r: &str| r.split(",\"wall_ms\"").next().unwrap().to_string();
        assert_eq!(format!("{}}}", strip(&priced)), plain1);
        // The monitor summary accumulates the whole stream's bill.
        let summary = run(
            br#"{"id":"m9","verb":"monitor","tags":200,"updates":3,"window":2,"rounds":8,"epsilon":0.2,"delta":0.2,"phy":"gen2"}"#,
        );
        let last = summary.lines().last().unwrap();
        assert!(
            last.contains("\"verb\":\"monitor\"") && last.contains("\"wall_ms\":"),
            "{last}"
        );
        // An unknown profile is a parse-time error.
        match core.handle_line(br#"{"id":"e2","verb":"estimate","tags":10,"phy":"lte"}"#) {
            Some(Dispatch::Reply(r)) => assert!(r.contains("unknown \\\"phy\\\""), "{r}"),
            _ => panic!("bad profile must reply inline"),
        }
        // The priced runs above accumulated into the snapshot counters.
        let snapshot = core.metrics.snapshot();
        assert!(snapshot.counter("phy.wall_ms") > 0);
        assert!(snapshot.counter("phy.energy_uj") > 0);
    }
}
