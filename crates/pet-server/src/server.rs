//! Server front door: `serve` plus the threaded reference backend.
//!
//! ```text
//!                  serve(&ServerConfig)
//!                 /                    \
//!        Backend::Threaded       Backend::Evented
//!    (this module: thread per   (event_loop: sharded
//!     connection + worker pool)  readiness loop)
//!                 \                    /
//!                  one shared ServiceCore
//!            (verbs, deadlines, seeding, metrics)
//! ```
//!
//! Both backends drive the same [`ServiceCore`], so they answer identical
//! request streams with byte-identical replies; [`serve`] picks one from
//! [`ServerConfig::backend`] and wraps it in a backend-agnostic
//! [`ServerHandle`].
//!
//! The threaded backend in this module is the reference implementation:
//!
//! ```text
//!            accept()            bounded queue           worker pool
//! clients ──▶ listener ──▶ conn threads ──try_push──▶ [cap N] ──pop──▶ W workers
//!                              │   ▲                                    │
//!                              │   └───────── reply channel ◀───────────┘
//!                              └─ overload / bad_request / control replies inline
//! ```
//!
//! Design rules, in order of priority (shared by both backends):
//!
//! 1. **Every request line gets exactly one reply.** Malformed input,
//!    overload, deadlines, shutdown — all answer structurally; nothing is
//!    silently dropped and no connection is left hanging. Every verb's
//!    reply is a single line except `monitor`, whose one reply is a
//!    bounded multi-line stream (delta lines + summary) written atomically
//!    as a unit — replies still never interleave.
//! 2. **Backpressure, never buffering.** Estimation work passes through a
//!    fixed-capacity [`BoundedQueue`]; when it is full the connection
//!    thread replies `overloaded` immediately. Memory use is bounded by
//!    `queue + workers + connections`, not by offered load.
//! 3. **Deadlines are enforced server-side.** A request carrying
//!    `deadline_ms` that is still queued when the deadline passes is
//!    answered `deadline_exceeded` by the worker that dequeues it, without
//!    doing the work.
//! 4. **Shutdown drains.** The `shutdown` verb closes the queue (new work
//!    is refused) but every already-queued job is completed and replied to
//!    before the ack goes out and the listener closes.
//!
//! Control-plane verbs (`telemetry-snapshot`, `shutdown`) are answered on
//! the connection thread, bypassing the queue — observability and the off
//! switch keep working under full overload.

use crate::event_loop::EventedHandle;
use crate::queue::{BoundedQueue, PushRefused};
use crate::service::{Backend, Dispatch, ServiceCore};
use pet_obs::Summary;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use crate::service::{seed_for_id, ServerConfig, MAX_LINE_BYTES};

/// One queued estimation job.
struct Job {
    request: Box<crate::proto::Request>,
    enqueued: Instant,
    reply: mpsc::SyncSender<String>,
}

/// Worker/connection-shared state of the threaded backend.
struct Shared {
    core: Arc<ServiceCore>,
    queue: BoundedQueue<Job>,
    addr: SocketAddr,
    /// Live worker count; the shutdown handler waits for it to hit zero
    /// (== queue fully drained) before acking.
    workers_live: (Mutex<usize>, Condvar),
    /// Live connection count; `join` waits (bounded) for it to hit zero.
    conns_live: (Mutex<usize>, Condvar),
}

impl Shared {
    /// Stops intake: refuses new work and closes the queue. The listener
    /// is woken *separately*, after the drain, so the socket outlives every
    /// in-flight job.
    fn begin_shutdown(&self) {
        self.core.begin_shutdown();
        self.queue.close();
    }

    /// Unblocks the accept loop; the connect itself is the signal.
    fn wake_listener(&self) {
        let _ = TcpStream::connect(self.addr);
    }

    fn wait_workers_drained(&self) {
        let (lock, cvar) = &self.workers_live;
        let mut live = lock.lock().expect("worker count poisoned");
        while *live > 0 {
            live = cvar.wait(live).expect("worker count poisoned");
        }
    }
}

/// A running server (either backend). Dropping the handle does **not**
/// stop the server; call [`ServerHandle::shutdown`] (or send the
/// `shutdown` verb) and then [`ServerHandle::join`].
pub struct ServerHandle {
    inner: HandleInner,
}

enum HandleInner {
    Threaded(ThreadedHandle),
    Evented(EventedHandle),
}

struct ThreadedHandle {
    shared: Arc<Shared>,
    listener_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        match &self.inner {
            HandleInner::Threaded(h) => h.shared.addr,
            HandleInner::Evented(h) => h.addr(),
        }
    }

    /// A snapshot of the server's RED metrics.
    #[must_use]
    pub fn metrics(&self) -> Summary {
        match &self.inner {
            HandleInner::Threaded(h) => h.shared.core.snapshot(),
            HandleInner::Evented(h) => h.metrics(),
        }
    }

    /// Initiates the same graceful shutdown as the `shutdown` verb:
    /// refuses new work, blocks until in-flight work has drained, then
    /// closes the listener.
    pub fn shutdown(&self) {
        match &self.inner {
            HandleInner::Threaded(h) => {
                h.shared.begin_shutdown();
                h.shared.wait_workers_drained();
                h.shared.wake_listener();
            }
            HandleInner::Evented(h) => h.shutdown(),
        }
    }

    /// Waits for the listener and workers/shards to finish (call after
    /// [`Self::shutdown`] or once a client has sent the `shutdown` verb),
    /// then returns the final metrics. Lingering idle connections are
    /// given a short grace period; their clients have already received a
    /// reply for every request they sent.
    pub fn join(self) -> Summary {
        match self.inner {
            HandleInner::Threaded(mut h) => {
                if let Some(t) = h.listener_thread.take() {
                    let _ = t.join();
                }
                for t in h.worker_threads.drain(..) {
                    let _ = t.join();
                }
                let (lock, cvar) = &h.shared.conns_live;
                let deadline = Instant::now() + Duration::from_secs(1);
                let mut live = lock.lock().expect("conn count poisoned");
                while *live > 0 && Instant::now() < deadline {
                    let (guard, _) = cvar
                        .wait_timeout(live, Duration::from_millis(50))
                        .expect("conn count poisoned");
                    live = guard;
                }
                drop(live);
                h.shared.core.snapshot()
            }
            HandleInner::Evented(h) => h.join(),
        }
    }
}

/// Binds and starts the service on the configured [`Backend`].
///
/// # Errors
///
/// Returns the I/O error when the address cannot be bound.
///
/// # Panics
///
/// Panics if `workers` or `queue_capacity` is zero.
pub fn serve(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    assert!(config.workers > 0, "at least one worker is required");
    assert!(config.queue_capacity > 0, "queue capacity must be positive");
    let listener = TcpListener::bind(&config.addr)?;
    let core = Arc::new(ServiceCore::new(config));
    match config.backend {
        Backend::Threaded => serve_threaded(config, listener, core),
        Backend::Evented => Ok(ServerHandle {
            inner: HandleInner::Evented(crate::event_loop::serve_evented(config, listener, core)?),
        }),
    }
}

fn serve_threaded(
    config: &ServerConfig,
    listener: TcpListener,
    core: Arc<ServiceCore>,
) -> std::io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        core,
        queue: BoundedQueue::new(config.queue_capacity),
        addr,
        workers_live: (Mutex::new(config.workers), Condvar::new()),
        conns_live: (Mutex::new(0), Condvar::new()),
    });

    let worker_threads: Vec<JoinHandle<()>> = (0..config.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("pet-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let listener_thread = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("pet-listener".to_string())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn listener")
    };

    Ok(ServerHandle {
        inner: HandleInner::Threaded(ThreadedHandle {
            shared,
            listener_thread: Some(listener_thread),
            worker_threads,
        }),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.core.is_shutting_down() {
            break; // the wake-up connection (or a raced client) ends us
        }
        let Ok(stream) = stream else { continue };
        {
            let (lock, _) = &shared.conns_live;
            *lock.lock().expect("conn count poisoned") += 1;
        }
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("pet-conn".to_string())
            .spawn(move || {
                connection_loop(stream, &shared);
                let (lock, cvar) = &shared.conns_live;
                *lock.lock().expect("conn count poisoned") -= 1;
                cvar.notify_all();
            });
    }
    // Dropping the listener here closes the socket — after the queue has
    // been closed and (for verb-initiated shutdowns) drained.
}

/// Reads one `\n`-terminated line with a hard length bound. Returns
/// `Ok(None)` on clean EOF and `Err(())` when the bound is exceeded.
fn read_line_bounded(reader: &mut impl BufRead, buf: &mut Vec<u8>) -> Result<Option<()>, ()> {
    buf.clear();
    let mut limited = reader.take(MAX_LINE_BYTES as u64 + 1);
    match limited.read_until(b'\n', buf) {
        Ok(0) => Ok(None),
        Ok(_) if buf.len() > MAX_LINE_BYTES => Err(()),
        Ok(_) => Ok(Some(())),
        Err(_) => Ok(None), // treat I/O errors as disconnect
    }
}

fn write_reply(stream: &mut TcpStream, reply: &str) -> bool {
    stream
        .write_all(reply.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .is_ok()
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut buf = Vec::new();
    loop {
        match read_line_bounded(&mut reader, &mut buf) {
            Ok(None) => return,
            Err(()) => {
                // Oversized line: answer structurally, then drop the
                // connection.
                let reply = shared.core.refuse_oversized();
                let _ = write_reply(&mut stream, &reply);
                return;
            }
            Ok(Some(())) => {}
        }
        let reply = match shared.core.handle_line(&buf) {
            None => continue, // tolerate blank lines / keepalives
            Some(Dispatch::Reply(reply)) => reply,
            Some(Dispatch::Shutdown { ack }) => {
                let started = Instant::now();
                // Drain before waking the listener: in-flight jobs finish
                // and reply while the socket is still open; only then does
                // the accept loop exit and close it.
                shared.begin_shutdown();
                shared.wait_workers_drained();
                shared.wake_listener();
                shared.core.record_ok(started.elapsed());
                ack
            }
            Some(Dispatch::Work(request)) => {
                let id = request.id.clone();
                let (tx, rx) = mpsc::sync_channel(1);
                let job = Job {
                    request,
                    enqueued: Instant::now(),
                    reply: tx,
                };
                match shared.queue.try_push(job) {
                    Ok(()) => match rx.recv() {
                        Ok(reply) => reply,
                        Err(_) => {
                            // Worker pool died mid-job — only plausible
                            // during a crash; still answer structurally.
                            shared
                                .core
                                .metrics()
                                .error(crate::proto::ErrorCode::Internal);
                            crate::proto::error_reply(
                                Some(&id),
                                crate::proto::ErrorCode::Internal,
                                Some("worker pool gone"),
                            )
                        }
                    },
                    Err((_, PushRefused::Full)) => shared.core.refuse_overloaded(&id),
                    Err((_, PushRefused::Closed)) => shared.core.refuse_shutting_down(&id),
                }
            }
        };
        if !write_reply(&mut stream, &reply) {
            return;
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let reply = shared.core.execute_work(&job.request, job.enqueued);
        // The connection may have gone away; the job is still "served".
        let _ = job.reply.send(reply);
    }
    let (lock, cvar) = &shared.workers_live;
    *lock.lock().expect("worker count poisoned") -= 1;
    cvar.notify_all();
}
