//! The threaded estimation service.
//!
//! ```text
//!            accept()            bounded queue           worker pool
//! clients ──▶ listener ──▶ conn threads ──try_push──▶ [cap N] ──pop──▶ W workers
//!                              │   ▲                                    │
//!                              │   └───────── reply channel ◀───────────┘
//!                              └─ overload / bad_request / control replies inline
//! ```
//!
//! Design rules, in order of priority:
//!
//! 1. **Every request line gets exactly one reply line.** Malformed input,
//!    overload, deadlines, shutdown — all answer structurally; nothing is
//!    silently dropped and no connection is left hanging.
//! 2. **Backpressure, never buffering.** Estimation work passes through a
//!    fixed-capacity [`BoundedQueue`]; when it is full the connection
//!    thread replies `overloaded` immediately. Memory use is bounded by
//!    `queue + workers + connections`, not by offered load.
//! 3. **Deadlines are enforced server-side.** A request carrying
//!    `deadline_ms` that is still queued when the deadline passes is
//!    answered `deadline_exceeded` by the worker that dequeues it, without
//!    doing the work.
//! 4. **Shutdown drains.** The `shutdown` verb closes the queue (new work
//!    is refused) but every already-queued job is completed and replied to
//!    before the ack goes out and the listener closes.
//!
//! Control-plane verbs (`telemetry-snapshot`, `shutdown`) are answered on
//! the connection thread, bypassing the queue — observability and the off
//! switch keep working under full overload.
//!
//! Estimation routes through [`pet_core::front::Estimator`] (both
//! backends, every `ChannelModel`/`Mitigation` knob), and code banks come
//! from a server-owned [`RosterCache`], so concurrent requests for the
//! same population share one hash+sort.

use crate::metrics::ServerMetrics;
use crate::proto::{
    error_reply, ok_reply, parse_request, ErrorCode, EstimateParams, ReaderRoundParams, Request,
    RobustnessRequest, Verb,
};
use crate::queue::{BoundedQueue, PushRefused};
use crate::shard::{reader_round_config, ShardCache};
use pet_core::bits::BitString;
use pet_core::config::TagMode;
use pet_core::front::Estimator;
use pet_core::oracle::{CodeRoster, ResponderOracle, RoundStart};
use pet_hash::family::AnyFamily;
use pet_obs::Summary;
use pet_sim::cache::RosterCache;
use pet_sim::experiments::robustness;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest request line the server will read before answering
/// `bad_request` and dropping the connection (matches the JSON parser's
/// input bound).
pub const MAX_LINE_BYTES: usize = crate::json::MAX_INPUT_BYTES;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing estimation jobs.
    pub workers: usize,
    /// Capacity of the job queue; pushes beyond it get `overloaded`.
    pub queue_capacity: usize,
    /// Deterministic mode: requests without an explicit `seed` derive one
    /// from the request id alone, so equal requests produce byte-identical
    /// replies across server restarts.
    pub deterministic: bool,
    /// Deadline applied to requests that do not carry `deadline_ms`.
    pub default_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            deterministic: false,
            default_deadline: None,
        }
    }
}

/// One queued estimation job.
struct Job {
    request: Request,
    enqueued: Instant,
    reply: mpsc::SyncSender<String>,
}

/// Worker/connection-shared state.
struct Shared {
    queue: BoundedQueue<Job>,
    metrics: ServerMetrics,
    cache: RosterCache,
    shards: ShardCache,
    addr: SocketAddr,
    deterministic: bool,
    /// XOR'd into id-derived seeds outside deterministic mode, so repeated
    /// runs do not accidentally correlate.
    seed_entropy: u64,
    default_deadline: Option<Duration>,
    shutting_down: AtomicBool,
    /// Live worker count; the shutdown handler waits for it to hit zero
    /// (== queue fully drained) before acking.
    workers_live: (Mutex<usize>, Condvar),
    /// Live connection count; `join` waits (bounded) for it to hit zero.
    conns_live: (Mutex<usize>, Condvar),
}

impl Shared {
    /// Stops intake: refuses new work and closes the queue. The listener
    /// is woken *separately*, after the drain, so the socket outlives every
    /// in-flight job.
    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Unblocks the accept loop; the connect itself is the signal.
    fn wake_listener(&self) {
        let _ = TcpStream::connect(self.addr);
    }

    fn wait_workers_drained(&self) {
        let (lock, cvar) = &self.workers_live;
        let mut live = lock.lock().expect("worker count poisoned");
        while *live > 0 {
            live = cvar.wait(live).expect("worker count poisoned");
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or send the `shutdown` verb) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    listener_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A snapshot of the server's RED metrics.
    #[must_use]
    pub fn metrics(&self) -> Summary {
        self.shared.metrics.snapshot()
    }

    /// Initiates the same graceful shutdown as the `shutdown` verb:
    /// refuses new work, blocks until the queue has drained, then closes
    /// the listener.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
        self.shared.wait_workers_drained();
        self.shared.wake_listener();
    }

    /// Waits for the listener and workers to finish (call after
    /// [`Self::shutdown`] or once a client has sent the `shutdown` verb),
    /// then returns the final metrics. Lingering idle connections are
    /// given a short grace period; their clients have already received a
    /// reply for every request they sent.
    pub fn join(mut self) -> Summary {
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        let (lock, cvar) = &self.shared.conns_live;
        let deadline = Instant::now() + Duration::from_secs(1);
        let mut live = lock.lock().expect("conn count poisoned");
        while *live > 0 && Instant::now() < deadline {
            let (guard, _) = cvar
                .wait_timeout(live, Duration::from_millis(50))
                .expect("conn count poisoned");
            live = guard;
        }
        drop(live);
        self.shared.metrics.snapshot()
    }
}

/// Binds and starts the service.
///
/// # Errors
///
/// Returns the I/O error when the address cannot be bound.
///
/// # Panics
///
/// Panics if `workers` or `queue_capacity` is zero.
pub fn serve(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    assert!(config.workers > 0, "at least one worker is required");
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let seed_entropy = if config.deterministic {
        0
    } else {
        // Per-process entropy without any new dependency: the std hasher
        // is randomly keyed per process.
        use std::hash::{BuildHasher, Hasher};
        std::collections::hash_map::RandomState::new()
            .build_hasher()
            .finish()
    };
    let shared = Arc::new(Shared {
        queue: BoundedQueue::new(config.queue_capacity),
        metrics: ServerMetrics::default(),
        cache: RosterCache::default(),
        shards: ShardCache::default(),
        addr,
        deterministic: config.deterministic,
        seed_entropy,
        default_deadline: config.default_deadline,
        shutting_down: AtomicBool::new(false),
        workers_live: (Mutex::new(config.workers), Condvar::new()),
        conns_live: (Mutex::new(0), Condvar::new()),
    });

    let worker_threads: Vec<JoinHandle<()>> = (0..config.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("pet-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let listener_thread = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("pet-listener".to_string())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn listener")
    };

    Ok(ServerHandle {
        shared,
        listener_thread: Some(listener_thread),
        worker_threads,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break; // the wake-up connection (or a raced client) ends us
        }
        let Ok(stream) = stream else { continue };
        {
            let (lock, _) = &shared.conns_live;
            *lock.lock().expect("conn count poisoned") += 1;
        }
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("pet-conn".to_string())
            .spawn(move || {
                connection_loop(stream, &shared);
                let (lock, cvar) = &shared.conns_live;
                *lock.lock().expect("conn count poisoned") -= 1;
                cvar.notify_all();
            });
    }
    // Dropping the listener here closes the socket — after the queue has
    // been closed and (for verb-initiated shutdowns) drained.
}

/// Reads one `\n`-terminated line with a hard length bound. Returns
/// `Ok(None)` on clean EOF and `Err(())` when the bound is exceeded.
fn read_line_bounded(reader: &mut impl BufRead, buf: &mut Vec<u8>) -> Result<Option<()>, ()> {
    buf.clear();
    let mut limited = reader.take(MAX_LINE_BYTES as u64 + 1);
    match limited.read_until(b'\n', buf) {
        Ok(0) => Ok(None),
        Ok(_) if buf.len() > MAX_LINE_BYTES => Err(()),
        Ok(_) => Ok(Some(())),
        Err(_) => Ok(None), // treat I/O errors as disconnect
    }
}

fn write_reply(stream: &mut TcpStream, reply: &str) -> bool {
    stream
        .write_all(reply.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .is_ok()
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut buf = Vec::new();
    loop {
        match read_line_bounded(&mut reader, &mut buf) {
            Ok(None) => return,
            Err(()) => {
                // Oversized line: answer structurally, then drop the
                // connection — resynchronizing mid-stream is guesswork.
                shared.metrics.error(ErrorCode::BadRequest);
                let reply = error_reply(
                    None,
                    ErrorCode::BadRequest,
                    Some(&format!("request line exceeds {MAX_LINE_BYTES} bytes")),
                );
                let _ = write_reply(&mut stream, &reply);
                return;
            }
            Ok(Some(())) => {}
        }
        let Ok(text) = std::str::from_utf8(&buf) else {
            shared.metrics.error(ErrorCode::BadRequest);
            let reply = error_reply(None, ErrorCode::BadRequest, Some("request is not UTF-8"));
            if !write_reply(&mut stream, &reply) {
                return;
            }
            continue;
        };
        let line = text.trim();
        if line.is_empty() {
            continue; // tolerate blank lines / keepalives
        }
        let reply = match parse_request(line) {
            Err(e) => {
                shared.metrics.error(ErrorCode::BadRequest);
                error_reply(e.id.as_deref(), ErrorCode::BadRequest, Some(&e.detail))
            }
            Ok(request) => dispatch(request, shared),
        };
        if !write_reply(&mut stream, &reply) {
            return;
        }
    }
}

/// Routes one parsed request: control verbs inline, work verbs through the
/// queue. Always returns a reply line.
fn dispatch(request: Request, shared: &Arc<Shared>) -> String {
    shared.metrics.request(request.verb.name());
    match &request.verb {
        Verb::TelemetrySnapshot => {
            let started = Instant::now();
            let snapshot = shared.metrics.snapshot().to_json();
            let reply = ok_reply(
                &request.id,
                "telemetry-snapshot",
                &format!("\"snapshot\":{snapshot}"),
            );
            shared.metrics.ok(started.elapsed());
            reply
        }
        Verb::Shutdown => {
            let started = Instant::now();
            // Drain before waking the listener: in-flight jobs finish and
            // reply while the socket is still open; only then does the
            // accept loop exit and close it.
            shared.begin_shutdown();
            shared.wait_workers_drained();
            shared.wake_listener();
            let reply = ok_reply(&request.id, "shutdown", "\"drained\":true");
            shared.metrics.ok(started.elapsed());
            reply
        }
        Verb::Estimate(_) | Verb::Robustness(_) | Verb::ReaderRound(_) => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                shared.metrics.error(ErrorCode::ShuttingDown);
                return error_reply(Some(&request.id), ErrorCode::ShuttingDown, None);
            }
            let id = request.id.clone();
            let (tx, rx) = mpsc::sync_channel(1);
            let job = Job {
                request,
                enqueued: Instant::now(),
                reply: tx,
            };
            match shared.queue.try_push(job) {
                Ok(()) => match rx.recv() {
                    Ok(reply) => reply,
                    Err(_) => {
                        // Worker pool died mid-job — only plausible during
                        // a crash; still answer structurally.
                        shared.metrics.error(ErrorCode::Internal);
                        error_reply(Some(&id), ErrorCode::Internal, Some("worker pool gone"))
                    }
                },
                Err((_, PushRefused::Full)) => {
                    shared.metrics.error(ErrorCode::Overloaded);
                    error_reply(Some(&id), ErrorCode::Overloaded, None)
                }
                Err((_, PushRefused::Closed)) => {
                    shared.metrics.error(ErrorCode::ShuttingDown);
                    error_reply(Some(&id), ErrorCode::ShuttingDown, None)
                }
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let deadline = job.request.deadline.or(shared.default_deadline);
        let reply = if deadline.is_some_and(|d| job.enqueued.elapsed() > d) {
            shared.metrics.error(ErrorCode::DeadlineExceeded);
            error_reply(Some(&job.request.id), ErrorCode::DeadlineExceeded, None)
        } else {
            let reply = execute(&job.request, shared);
            shared.metrics.ok(job.enqueued.elapsed());
            reply
        };
        // The connection may have gone away; the job is still "served".
        let _ = job.reply.send(reply);
    }
    let (lock, cvar) = &shared.workers_live;
    *lock.lock().expect("worker count poisoned") -= 1;
    cvar.notify_all();
}

/// FNV-1a over the request id — the deterministic-mode seed derivation.
#[must_use]
pub fn seed_for_id(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn execute(request: &Request, shared: &Arc<Shared>) -> String {
    match &request.verb {
        Verb::Estimate(params) => execute_estimate(&request.id, params, shared),
        Verb::Robustness(params) => execute_robustness(&request.id, params),
        Verb::ReaderRound(params) => execute_reader_round(&request.id, params, shared),
        // Control verbs never reach the queue.
        Verb::TelemetrySnapshot | Verb::Shutdown => error_reply(
            Some(&request.id),
            ErrorCode::Internal,
            Some("misrouted verb"),
        ),
    }
}

/// Executes one hash-synchronized estimating round against this agent's
/// zone shard: reconstructs the shard deterministically (cached), counts
/// raw responders for *every* prefix length `1..=height` of the announced
/// path, and reports the counts plus the shard population. The controller
/// applies per-reader channel models and runs the adaptive binary search
/// itself — raw counts are what keep the fleet merge bit-for-bit equal to
/// the in-process `pet-sim` controller, mitigation re-probes included.
fn execute_reader_round(id: &str, params: &ReaderRoundParams, shared: &Arc<Shared>) -> String {
    let path = BitString::from_bits(params.path_bits, params.height)
        .expect("path validated against height at parse");
    let start = RoundStart {
        path,
        seed: params.round_seed,
    };
    let (population, counts) = if params.round_seed.is_some() {
        // Active-tag mode: codes depend on the per-round seed, so the
        // roster is rebuilt from the cached shard keys each round.
        let keys = shared.shards.shard_keys(params);
        let config = reader_round_config(params, TagMode::ActivePerRound);
        let mut roster = CodeRoster::new(&keys, &config, AnyFamily::default());
        roster.begin_round(&start);
        let counts: Vec<u64> = (1..=params.height)
            .map(|len| roster.count_prefix(&path, len))
            .collect();
        (roster.population(), counts)
    } else {
        let roster = shared.shards.passive_roster(params);
        let counts: Vec<u64> = (1..=params.height)
            .map(|len| roster.count_prefix(&path, len))
            .collect();
        (roster.population(), counts)
    };
    let mut body = format!(
        "\"population\":{population},\"height\":{},\"counts\":[",
        params.height
    );
    for (i, c) in counts.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&c.to_string());
    }
    body.push(']');
    ok_reply(id, "reader-round", &body)
}

fn execute_estimate(id: &str, params: &EstimateParams, shared: &Arc<Shared>) -> String {
    let seed = params
        .seed
        .unwrap_or_else(|| seed_for_id(id) ^ shared.seed_entropy);
    let estimator = Estimator::new(params.config);
    let rounds = params.rounds.unwrap_or_else(|| params.config.rounds());
    let mut bank = shared
        .cache
        .sequential_bank(params.tags, &params.config, estimator.family());
    let mut rng = StdRng::seed_from_u64(seed);
    match estimator.try_run_bank(&mut bank, rounds, &mut rng) {
        Ok(report) => ok_reply(
            id,
            "estimate",
            &format!(
                "\"estimate\":{:?},\"rounds\":{},\"mean_prefix_len\":{:?},\"slots\":{},\"seed\":{},\"deterministic\":{}",
                report.estimate,
                report.rounds,
                report.mean_prefix_len,
                report.metrics.slots,
                seed,
                shared.deterministic || params.seed.is_some(),
            ),
        ),
        Err(e) => error_reply(Some(id), ErrorCode::Internal, Some(&e.to_string())),
    }
}

fn execute_robustness(id: &str, params: &RobustnessRequest) -> String {
    let rows = robustness::sweep(&robustness::RobustnessParams {
        n: params.tags,
        rounds: params.rounds,
        runs: params.runs,
        seed: params.seed,
        miss_rates: params.miss_rates.clone(),
        false_busy: params.false_busy,
        probes: params.probes,
    });
    let mut body = String::from("\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"miss\":{:?},\"false_busy\":{:?},\"mitigated\":{},\"mean_ratio\":{:?},\"rel_bias\":{:?},\"normalized_rmse\":{:?},\"mean_slots_per_round\":{:?}}}",
            row.miss,
            row.false_busy,
            row.mitigated,
            row.mean_ratio,
            row.rel_bias,
            row.normalized_rmse,
            row.mean_slots_per_round,
        ));
    }
    body.push(']');
    ok_reply(id, "robustness", &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_is_stable_and_spread() {
        // Pinned: deterministic mode promises the same id → the same seed
        // across builds and sessions.
        assert_eq!(seed_for_id(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(seed_for_id("r1"), {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in b"r1" {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        });
        assert_ne!(seed_for_id("a"), seed_for_id("b"));
        assert_ne!(seed_for_id("t0-1"), seed_for_id("t1-0"));
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.workers > 0);
        assert!(c.queue_capacity > 0);
        assert!(!c.deterministic);
        assert!(c.addr.ends_with(":0"), "ephemeral port by default");
    }
}
