//! A fixed-capacity MPMC job queue with explicit backpressure.
//!
//! The serving contract is "overflow gets an immediate `overloaded` reply,
//! never unbounded buffering": [`BoundedQueue::try_push`] either enqueues
//! or returns the job to the caller *now* — there is no blocking push, so a
//! flood of requests converts into overload replies instead of memory
//! growth or hidden latency. Workers block on [`BoundedQueue::pop`], which
//! drains remaining jobs after [`BoundedQueue::close`] and only then
//! returns `None` — that ordering is what makes graceful shutdown drain
//! in-flight work instead of dropping it.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRefused {
    /// The queue is at capacity — backpressure.
    Full,
    /// The queue was closed — shutdown.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue. All methods are `&self`; share it behind an `Arc`.
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity service could never
    /// accept work).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// The fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking, or hands the job straight back.
    ///
    /// # Errors
    ///
    /// Returns the job and a [`PushRefused`] reason when the queue is full
    /// (backpressure) or closed (shutdown).
    pub fn try_push(&self, job: T) -> Result<(), (T, PushRefused)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err((job, PushRefused::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((job, PushRefused::Full));
        }
        inner.items.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job. Returns `None` only once the queue is
    /// closed **and** drained — pending jobs are always delivered first.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(job) = inner.items.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: future pushes fail, blocked and future pops drain
    /// what remains and then return `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.try_push(9).unwrap_err(), (9, PushRefused::Full));
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3).unwrap_err(), (3, PushRefused::Closed));
        // Already-queued jobs still come out, in order, before the end.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed queue stays ended");
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the waiter time to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(16));
        let total = 4 * 500;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        let mut v = p * 1000 + i;
                        // Spin on backpressure — producers in this test are
                        // cooperative; the server replies `overloaded`
                        // instead.
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err((back, PushRefused::Full)) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                                Err((_, PushRefused::Closed)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "every job delivered exactly once");
    }

    /// The degenerate capacity-1 queue under concurrent load: the single
    /// slot forces maximal contention between producers, backpressure, and
    /// consumers — every job must still come out exactly once, and the
    /// queue must never hold more than one item.
    #[test]
    fn capacity_one_under_concurrent_load_delivers_exactly_once() {
        let q = Arc::new(BoundedQueue::new(1));
        let total = 4 * 250;
        let refused = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                let refused = Arc::clone(&refused);
                std::thread::spawn(move || {
                    for i in 0..250u32 {
                        let mut v = p * 1000 + i;
                        loop {
                            assert!(q.len() <= 1, "capacity bound violated");
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err((back, PushRefused::Full)) => {
                                    refused.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    v = back;
                                    std::thread::yield_now();
                                }
                                Err((_, PushRefused::Closed)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "every job delivered exactly once");
        assert!(
            refused.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "a capacity-1 queue under 4 producers must exert backpressure"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
