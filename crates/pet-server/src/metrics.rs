//! RED metrics (rate, errors, duration) for the serving layer.
//!
//! The server keeps its own [`pet_obs::Summary`] behind a mutex rather
//! than installing a process-global sink: tests and embedding binaries may
//! already own the global handle (`--telemetry`), and the
//! `telemetry-snapshot` verb must read *this server's* numbers regardless.
//! Every recording also forwards through the `pet_obs` free functions, so
//! when a global JSONL sink *is* installed the server's events stream
//! there too.
//!
//! Metric names:
//!
//! - `server.req.<verb>` — requests accepted per verb (rate)
//! - `server.ok` / `server.err.<code>` — reply outcomes (errors)
//! - `server.overload` — requests refused by the full queue
//! - span `server.request` — queue-to-reply latency (duration; log₂
//!   histogram via [`pet_obs::Histogram`])

use crate::proto::ErrorCode;
use pet_obs::{Event, Summary};
use std::sync::Mutex;
use std::time::Duration;

/// The server's metric store. All methods are `&self`; share via `Arc`.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    summary: Mutex<Summary>,
}

impl ServerMetrics {
    fn accumulate(&self, event: &Event) {
        self.summary
            .lock()
            .expect("metrics poisoned")
            .accumulate(event);
        // Forward to the process-global handle (free when disabled).
        pet_obs::record(event);
    }

    /// Records an accepted request of `verb`.
    pub fn request(&self, verb: &'static str) {
        self.accumulate(&Event::Counter {
            name: format!("server.req.{verb}").into(),
            delta: 1,
        });
    }

    /// Records a successful reply and its queue-to-reply latency.
    pub fn ok(&self, latency: Duration) {
        self.accumulate(&Event::Counter {
            name: "server.ok".into(),
            delta: 1,
        });
        self.latency(latency);
    }

    /// Records an error reply of the given code (and latency when the
    /// request reached a worker).
    pub fn error(&self, code: ErrorCode) {
        if code == ErrorCode::Overloaded {
            self.accumulate(&Event::Counter {
                name: "server.overload".into(),
                delta: 1,
            });
        }
        self.accumulate(&Event::Counter {
            name: format!("server.err.{}", code.wire()).into(),
            delta: 1,
        });
    }

    /// Records a request latency sample into the log₂ histogram.
    pub fn latency(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.accumulate(&Event::Span {
            name: "server.request".into(),
            nanos,
        });
    }

    /// A point-in-time snapshot of every counter and the latency
    /// histogram.
    #[must_use]
    pub fn snapshot(&self) -> Summary {
        self.summary.lock().expect("metrics poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_counters_accumulate() {
        let m = ServerMetrics::default();
        m.request("estimate");
        m.request("estimate");
        m.request("shutdown");
        m.ok(Duration::from_micros(120));
        m.ok(Duration::from_micros(250));
        m.error(ErrorCode::Overloaded);
        m.error(ErrorCode::BadRequest);
        let s = m.snapshot();
        assert_eq!(s.counter("server.req.estimate"), 2);
        assert_eq!(s.counter("server.req.shutdown"), 1);
        assert_eq!(s.counter("server.ok"), 2);
        assert_eq!(s.counter("server.overload"), 1);
        assert_eq!(s.counter("server.err.overloaded"), 1);
        assert_eq!(s.counter("server.err.bad_request"), 1);
        let spans = s.span_stats("server.request").unwrap();
        assert_eq!(spans.count, 2);
        assert!(spans.histogram.max().unwrap() >= 250_000);
    }

    #[test]
    fn snapshot_is_point_in_time() {
        let m = ServerMetrics::default();
        m.request("estimate");
        let before = m.snapshot();
        m.request("estimate");
        assert_eq!(before.counter("server.req.estimate"), 1);
        assert_eq!(m.snapshot().counter("server.req.estimate"), 2);
    }
}
