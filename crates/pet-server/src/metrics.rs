//! RED metrics (rate, errors, duration) for the serving layer.
//!
//! The server keeps its own tallies rather than installing a
//! process-global sink: tests and embedding binaries may already own the
//! global handle (`--telemetry`), and the `telemetry-snapshot` verb must
//! read *this server's* numbers regardless. Every recording also forwards
//! through the `pet_obs` free functions, so when a global JSONL sink *is*
//! installed the server's events stream there too.
//!
//! This sits on the per-request hot path of both serving backends, so the
//! known names — the protocol's five verbs and five error codes — are
//! kept as plain atomic counters and the latency histogram behind one
//! short mutex; a [`pet_obs::Summary`] is materialized only when
//! [`ServerMetrics::snapshot`] is asked for one. An unexpected verb name
//! (future protocol growth) falls back to a locked map so nothing is ever
//! dropped.
//!
//! Metric names:
//!
//! - `server.req.<verb>` — requests accepted per verb (rate)
//! - `server.ok` / `server.err.<code>` — reply outcomes (errors)
//! - `server.overload` — requests refused by the full queue
//! - span `server.request` — queue-to-reply latency (duration; log₂
//!   histogram via [`pet_obs::Histogram`])

use crate::proto::ErrorCode;
use pet_obs::{Event, Histogram, SpanStats, Summary};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The protocol's verbs, in wire-name order of `server.req.<verb>` keys.
const VERBS: [(&str, &str); 5] = [
    ("estimate", "server.req.estimate"),
    ("reader-round", "server.req.reader-round"),
    ("robustness", "server.req.robustness"),
    ("shutdown", "server.req.shutdown"),
    ("telemetry-snapshot", "server.req.telemetry-snapshot"),
];

/// Latency span accumulator (count/total live in the histogram's own
/// fields would drift on saturation; keep them explicit like
/// [`SpanStats`]).
#[derive(Debug, Default)]
struct LatencyAccum {
    count: u64,
    total_nanos: u64,
    histogram: Option<Histogram>,
}

/// The server's metric store. All methods are `&self`; share via `Arc`.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    req: [AtomicU64; VERBS.len()],
    req_other: Mutex<BTreeMap<&'static str, u64>>,
    ok: AtomicU64,
    overload: AtomicU64,
    err: [AtomicU64; 5],
    events: AtomicU64,
    latency: Mutex<LatencyAccum>,
    phy_wall_ms: AtomicU64,
    phy_energy_uj: AtomicU64,
}

impl ServerMetrics {
    /// Records an accepted request of `verb`.
    pub fn request(&self, verb: &'static str) {
        self.events.fetch_add(1, Ordering::Relaxed);
        if let Some(i) = VERBS.iter().position(|(v, _)| *v == verb) {
            self.req[i].fetch_add(1, Ordering::Relaxed);
            forward(&Event::Counter {
                name: VERBS[i].1.into(),
                delta: 1,
            });
        } else {
            *self
                .req_other
                .lock()
                .expect("metrics poisoned")
                .entry(verb)
                .or_default() += 1;
            forward(&Event::Counter {
                name: format!("server.req.{verb}").into(),
                delta: 1,
            });
        }
    }

    /// Records a successful reply and its queue-to-reply latency.
    pub fn ok(&self, latency: Duration) {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.ok.fetch_add(1, Ordering::Relaxed);
        forward(&Event::Counter {
            name: "server.ok".into(),
            delta: 1,
        });
        self.latency(latency);
    }

    /// Records an error reply of the given code (and latency when the
    /// request reached a worker).
    pub fn error(&self, code: ErrorCode) {
        if code == ErrorCode::Overloaded {
            self.events.fetch_add(1, Ordering::Relaxed);
            self.overload.fetch_add(1, Ordering::Relaxed);
            forward(&Event::Counter {
                name: "server.overload".into(),
                delta: 1,
            });
        }
        self.events.fetch_add(1, Ordering::Relaxed);
        self.err[code_index(code)].fetch_add(1, Ordering::Relaxed);
        let name: std::borrow::Cow<'static, str> = match code {
            ErrorCode::BadRequest => "server.err.bad_request".into(),
            ErrorCode::Overloaded => "server.err.overloaded".into(),
            ErrorCode::DeadlineExceeded => "server.err.deadline_exceeded".into(),
            ErrorCode::ShuttingDown => "server.err.shutting_down".into(),
            ErrorCode::Internal => "server.err.internal".into(),
        };
        forward(&Event::Counter { name, delta: 1 });
    }

    /// Accumulates one run's PHY pricing into the snapshot counters
    /// (rounded to whole ms/µJ). No global-sink forward here: the
    /// per-run `phy.wall_ms`/`phy.energy_uj` events are already emitted
    /// by `pet-core`'s fold, and doubling them would skew JSONL sums.
    pub fn phy(&self, report: &pet_phy::PhyReport) {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.phy_wall_ms
            .fetch_add(report.wall_ms.round() as u64, Ordering::Relaxed);
        self.phy_energy_uj
            .fetch_add(report.energy_uj.round() as u64, Ordering::Relaxed);
    }

    /// Records a request latency sample into the log₂ histogram.
    pub fn latency(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.events.fetch_add(1, Ordering::Relaxed);
        {
            let mut lat = self.latency.lock().expect("metrics poisoned");
            lat.count += 1;
            lat.total_nanos = lat.total_nanos.saturating_add(nanos);
            lat.histogram
                .get_or_insert_with(Histogram::new)
                .record(nanos);
        }
        forward(&Event::Span {
            name: "server.request".into(),
            nanos,
        });
    }

    /// A point-in-time snapshot of every counter and the latency
    /// histogram, materialized as a [`Summary`]. Names that were never
    /// recorded are absent, exactly as if the summary had been
    /// event-accumulated.
    #[must_use]
    pub fn snapshot(&self) -> Summary {
        let mut summary = Summary::default();
        summary.set_events(self.events.load(Ordering::Relaxed));
        for (i, (_, name)) in VERBS.iter().enumerate() {
            let total = self.req[i].load(Ordering::Relaxed);
            if total > 0 {
                summary.set_counter(name, total);
            }
        }
        for (verb, total) in self.req_other.lock().expect("metrics poisoned").iter() {
            summary.set_counter(&format!("server.req.{verb}"), *total);
        }
        let ok = self.ok.load(Ordering::Relaxed);
        if ok > 0 {
            summary.set_counter("server.ok", ok);
        }
        let overload = self.overload.load(Ordering::Relaxed);
        if overload > 0 {
            summary.set_counter("server.overload", overload);
        }
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            let total = self.err[code_index(code)].load(Ordering::Relaxed);
            if total > 0 {
                summary.set_counter(&format!("server.err.{}", code.wire()), total);
            }
        }
        let wall_ms = self.phy_wall_ms.load(Ordering::Relaxed);
        if wall_ms > 0 {
            summary.set_counter("phy.wall_ms", wall_ms);
        }
        let energy_uj = self.phy_energy_uj.load(Ordering::Relaxed);
        if energy_uj > 0 {
            summary.set_counter("phy.energy_uj", energy_uj);
        }
        let lat = self.latency.lock().expect("metrics poisoned");
        if let Some(histogram) = &lat.histogram {
            summary.set_span(
                "server.request",
                SpanStats {
                    count: lat.count,
                    total_nanos: lat.total_nanos,
                    histogram: histogram.clone(),
                },
            );
        }
        summary
    }
}

fn code_index(code: ErrorCode) -> usize {
    match code {
        ErrorCode::BadRequest => 0,
        ErrorCode::Overloaded => 1,
        ErrorCode::DeadlineExceeded => 2,
        ErrorCode::ShuttingDown => 3,
        ErrorCode::Internal => 4,
    }
}

/// Forwards to the process-global sink; the event structs here are all
/// borrowed-name literals, so this is free when telemetry is disabled.
fn forward(event: &Event) {
    pet_obs::record(event);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_counters_accumulate() {
        let m = ServerMetrics::default();
        m.request("estimate");
        m.request("estimate");
        m.request("shutdown");
        m.ok(Duration::from_micros(120));
        m.ok(Duration::from_micros(250));
        m.error(ErrorCode::Overloaded);
        m.error(ErrorCode::BadRequest);
        let s = m.snapshot();
        assert_eq!(s.counter("server.req.estimate"), 2);
        assert_eq!(s.counter("server.req.shutdown"), 1);
        assert_eq!(s.counter("server.ok"), 2);
        assert_eq!(s.counter("server.overload"), 1);
        assert_eq!(s.counter("server.err.overloaded"), 1);
        assert_eq!(s.counter("server.err.bad_request"), 1);
        let spans = s.span_stats("server.request").unwrap();
        assert_eq!(spans.count, 2);
        assert!(spans.histogram.max().unwrap() >= 250_000);
    }

    #[test]
    fn snapshot_is_point_in_time() {
        let m = ServerMetrics::default();
        m.request("estimate");
        let before = m.snapshot();
        m.request("estimate");
        assert_eq!(before.counter("server.req.estimate"), 1);
        assert_eq!(m.snapshot().counter("server.req.estimate"), 2);
    }

    #[test]
    fn event_totals_match_recorded_events() {
        let m = ServerMetrics::default();
        m.request("estimate"); // 1 event
        m.ok(Duration::from_micros(10)); // counter + span = 2 events
        m.error(ErrorCode::Overloaded); // overload + err counter = 2 events
        m.error(ErrorCode::Internal); // 1 event
        assert_eq!(m.snapshot().events(), 6);
    }

    #[test]
    fn unknown_verbs_are_still_counted() {
        let m = ServerMetrics::default();
        m.request("future-verb");
        assert_eq!(m.snapshot().counter("server.req.future-verb"), 1);
    }
}
