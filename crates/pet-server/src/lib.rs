//! # pet-server — the PET estimation *service*
//!
//! Everything before this crate was one-shot: a CLI call or a simulation
//! sweep that estimates once and exits. Real deployments run estimation as
//! a continuously queried back-end (the paper's §4.6.3 multi-reader
//! controller already *is* a back-end collecting reader reports), so this
//! crate turns the reproduction into a long-running daemon:
//!
//! - **Protocol** ([`proto`]): line-delimited JSON over TCP. Verbs:
//!   `estimate`, `robustness`, `reader-round`, `monitor`,
//!   `telemetry-snapshot`, `shutdown`. One request line in, one reply out —
//!   always, including for garbage input ([`json`] is a strict bounded
//!   parser, fuzz-pinned). Every reply is a single line except `monitor`'s,
//!   a bounded stream of delta lines capped by a summary line.
//! - **Monitoring** (`monitor`): a subscription-style verb streaming
//!   periodic re-estimates of a churning population —
//!   [`pet_core::monitor`] driven by `pet_tags::dynamics::ChurnSchedule`
//!   server-side — with sliding-window smoothing and a missing-tag alarm.
//! - **Fleet agent** (`reader-round`): the server doubles as one reader of
//!   a distributed fleet. It reconstructs its zone shard deterministically
//!   from four wire-size scalars (the derivation shared with
//!   `pet_sim::multireader::shard_keys`) and answers each
//!   hash-synchronized round with raw responder counts per prefix length,
//!   which the `pet-fleet` coordinator OR-merges across readers.
//! - **Service core** ([`service`]): the transport-agnostic
//!   parse→dispatch→respond brain — verbs, deadlines, deterministic
//!   seeding, metrics — shared verbatim by both serving backends, which is
//!   what makes their reply streams byte-identical.
//! - **Two backends** ([`Backend`]): `threaded` (thread per connection, a
//!   fixed-capacity [`queue`] in front of a bounded worker pool) and
//!   `evented` (sharded non-blocking event loops with pipelined requests
//!   per connection — the high-throughput default for load testing).
//!   Either way, overflow is answered `overloaded` immediately —
//!   backpressure instead of buffering — and every request may carry a
//!   `deadline_ms` the server enforces before starting work.
//! - **Lifecycle**: the `shutdown` verb (or [`ServerHandle::shutdown`])
//!   closes intake, completes and replies to every queued job, and only
//!   then closes the listener socket.
//! - **Observability** ([`metrics`]): RED metrics — request rate per verb,
//!   error/overload counts, log₂ latency histograms — kept in
//!   [`pet_obs::Summary`] form and served by the `telemetry-snapshot`
//!   verb; forwarded to the process-global `pet-obs` sink when one is
//!   installed.
//! - **Determinism**: in deterministic mode, a request without an explicit
//!   seed derives one from its id ([`seed_for_id`]), so identical request
//!   streams produce byte-identical reply streams across runs — the
//!   property the concurrency test battery and `pet loadgen
//!   --verify-deterministic` assert.
//!
//! Estimation routes through the unified [`pet_core::front::Estimator`]
//! (both backends, all channel/mitigation knobs), with code banks shared
//! across concurrent requests via a server-owned
//! [`pet_sim::cache::RosterCache`].
//!
//! ```no_run
//! use pet_server::{serve, Client, ServerConfig};
//!
//! let handle = serve(&ServerConfig {
//!     deterministic: true,
//!     ..ServerConfig::default()
//! })
//! .expect("bind");
//! let mut client = Client::connect(handle.addr()).expect("connect");
//! let reply = client
//!     .roundtrip(r#"{"id":"r1","verb":"estimate","tags":5000,"rounds":16}"#)
//!     .expect("roundtrip");
//! assert!(reply.contains("\"ok\":true"));
//! client.roundtrip(r#"{"id":"bye","verb":"shutdown"}"#).expect("shutdown");
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod event_loop;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod proto;
pub mod queue;
pub mod server;
pub mod service;
mod shard;

pub use client::Client;
pub use metrics::ServerMetrics;
pub use proto::{parse_request, ErrorCode, ReaderRoundParams, Request, Verb};
pub use queue::{BoundedQueue, PushRefused};
pub use server::{serve, ServerHandle};
pub use service::{seed_for_id, Backend, ServerConfig, ServiceCore, MAX_LINE_BYTES};
