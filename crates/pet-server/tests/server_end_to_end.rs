//! End-to-end concurrency battery for the estimation service.
//!
//! Everything here runs against a real listener on an ephemeral port, with
//! real client sockets on real threads — and every case runs twice, once
//! per serving backend (`battery!` expands a threaded and an evented
//! variant), because both backends drive the same `ServiceCore` and must
//! be observationally identical. The properties pinned:
//!
//! - **Zero lost replies**: every request line sent receives exactly one
//!   reply line with the matching id, under concurrent mixed load.
//! - **Determinism**: in deterministic mode the same request stream yields
//!   byte-identical replies from two independently started servers — and
//!   from the *other backend* (`cross_backend_replies_are_byte_identical`).
//! - **Backpressure**: `overloaded` appears only once the queue bound is
//!   actually hit, and a closed-loop client within the bound never sees it.
//! - **Deadlines**: a request whose deadline expires in the queue is
//!   answered `deadline_exceeded` without being executed.
//! - **Graceful shutdown**: `shutdown` drains in-flight requests (they all
//!   still reply) before the listener socket closes.
//! - **Monitor streams**: a `monitor` subscription delivers every delta
//!   line plus the summary, byte-identically across server instances in
//!   deterministic mode, and a shutdown mid-subscription still drains the
//!   full stream with zero lost deltas.

use pet_server::json::Json;
use pet_server::{serve, Backend, Client, ServerConfig};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

fn deterministic_server(
    backend: Backend,
    workers: usize,
    queue: usize,
) -> pet_server::ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        backend,
        workers,
        queue_capacity: queue,
        deterministic: true,
        default_deadline: None,
    })
    .expect("bind ephemeral port")
}

/// Expands one battery case into a `#[test]` per backend.
macro_rules! battery {
    ($name:ident) => {
        mod $name {
            use super::*;
            #[test]
            fn threaded() {
                super::$name(Backend::Threaded);
            }
            #[test]
            fn evented() {
                super::$name(Backend::Evented);
            }
        }
    };
}

/// The mixed workload: estimation across backends, channels, and
/// mitigations, plus small robustness sweeps — every id fully determines
/// its request.
fn mixed_request(thread: usize, i: usize) -> (String, String) {
    let id = format!("t{thread}-{i}");
    let line = match i % 5 {
        0 => format!(r#"{{"id":"{id}","verb":"estimate","tags":400,"rounds":8}}"#),
        1 => {
            format!(r#"{{"id":"{id}","verb":"estimate","tags":300,"rounds":8,"backend":"oracle"}}"#)
        }
        2 => format!(
            r#"{{"id":"{id}","verb":"estimate","tags":500,"rounds":8,"miss":0.05,"probes":2}}"#
        ),
        3 => format!(
            r#"{{"id":"{id}","verb":"estimate","tags":500,"rounds":8,"miss":0.03,"false_busy":0.01,"trim":1}}"#
        ),
        _ => format!(
            r#"{{"id":"{id}","verb":"robustness","tags":120,"rounds":6,"runs":2,"miss_rates":[0,0.05]}}"#
        ),
    };
    (id, line)
}

/// Runs `threads × per_thread` mixed requests against `addr`, one client
/// connection per thread, and returns every (id → reply) pair.
fn hammer(addr: SocketAddr, threads: usize, per_thread: usize) -> BTreeMap<String, String> {
    let results = Arc::new(Mutex::new(BTreeMap::new()));
    let barrier = Arc::new(Barrier::new(threads));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let results = Arc::clone(&results);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                barrier.wait();
                for i in 0..per_thread {
                    let (id, line) = mixed_request(t, i);
                    let reply = client.roundtrip(&line).expect("reply");
                    results.lock().unwrap().insert(id, reply);
                }
            });
        }
    });
    Arc::try_unwrap(results).unwrap().into_inner().unwrap()
}

fn concurrent_mixed_load_loses_nothing_and_is_deterministic(backend: Backend) {
    let threads = 8;
    let per_thread = 20;

    let run = || {
        let handle = deterministic_server(backend, 4, 64);
        let addr = handle.addr();
        let replies = hammer(addr, threads, per_thread);
        handle.shutdown();
        let metrics = handle.join();
        (replies, metrics)
    };
    let (first, metrics) = run();
    let (second, _) = run();

    // Zero lost replies: one reply per request, ids echoed.
    assert_eq!(first.len(), threads * per_thread);
    for (id, reply) in &first {
        let v = Json::parse(reply).unwrap_or_else(|e| panic!("{id}: bad JSON {reply:?}: {e}"));
        assert_eq!(v.get("id").and_then(Json::as_str), Some(id.as_str()));
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "{id}: {reply}"
        );
    }

    // Byte-identical across two fresh servers (deterministic mode).
    assert_eq!(
        first, second,
        "deterministic replies must be byte-identical"
    );

    // The RED metrics saw the whole workload.
    assert_eq!(
        metrics.counter("server.req.estimate") + metrics.counter("server.req.robustness"),
        (threads * per_thread) as u64
    );
    assert_eq!(metrics.counter("server.ok"), (threads * per_thread) as u64);
    assert_eq!(metrics.counter("server.overload"), 0);
    let lat = metrics.span_stats("server.request").expect("latency spans");
    assert_eq!(lat.count, (threads * per_thread) as u64);
}
battery!(concurrent_mixed_load_loses_nothing_and_is_deterministic);

/// Both backends drive the same `ServiceCore`, so the same deterministic
/// request stream must produce byte-identical reply sets — the in-process
/// twin of `pet loadgen --verify-deterministic`'s cross-backend digest.
#[test]
fn cross_backend_replies_are_byte_identical() {
    let run = |backend| {
        let handle = deterministic_server(backend, 2, 64);
        let replies = hammer(handle.addr(), 4, 15);
        handle.shutdown();
        handle.join();
        replies
    };
    let threaded = run(Backend::Threaded);
    let evented = run(Backend::Evented);
    assert_eq!(threaded.len(), 60);
    assert_eq!(
        threaded, evented,
        "backends must be byte-identical on the same seeds"
    );
}

fn closed_loop_within_queue_bound_never_overloads(backend: Backend) {
    // 4 threads in closed loop against capacity 4: at most 4 requests are
    // ever outstanding, so the bound is never exceeded and `overloaded`
    // must not appear.
    let handle = deterministic_server(backend, 1, 4);
    let addr = handle.addr();
    std::thread::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                for i in 0..10 {
                    let line =
                        format!(r#"{{"id":"c{t}-{i}","verb":"estimate","tags":200,"rounds":4}}"#);
                    let reply = client.roundtrip(&line).expect("reply");
                    assert!(reply.contains("\"ok\":true"), "{reply}");
                }
            });
        }
    });
    handle.shutdown();
    let metrics = handle.join();
    assert_eq!(metrics.counter("server.overload"), 0);
    assert_eq!(metrics.counter("server.ok"), 40);
}
battery!(closed_loop_within_queue_bound_never_overloads);

/// A request slow enough (~0.7 s measured on this host) to keep the single
/// worker busy while the tests below race follow-up requests against it.
/// Re-sized after the SIMD kernels made the previous sweep finish in under
/// the tests' setup sleeps, which silently defeated the worker pinning.
const SLOW_LINE: &str = r#"{"id":"slow","verb":"robustness","tags":100000,"rounds":512,"runs":48,"miss_rates":[0,0.02,0.05]}"#;

fn overload_replies_appear_exactly_when_queue_is_full(backend: Backend) {
    // One worker, capacity 1. Occupy the worker with a slow sweep, fill
    // the queue slot, then probe: the probe must bounce with `overloaded`
    // while both earlier requests still complete. (On the evented backend
    // the single shard is busy executing the slow job, so the bounce is
    // deferred until the next sweep — but the connection order still
    // guarantees "queued" wins the slot and the probe bounces.)
    let handle = deterministic_server(backend, 1, 1);
    let addr = handle.addr();

    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        c.roundtrip(SLOW_LINE).unwrap()
    });
    // Give the worker time to dequeue the slow job (queue now empty).
    std::thread::sleep(Duration::from_millis(100));

    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        c.roundtrip(r#"{"id":"queued","verb":"estimate","tags":200,"rounds":4}"#)
            .unwrap()
    });
    // Let "queued" land in the single queue slot.
    std::thread::sleep(Duration::from_millis(80));

    let mut prober = Client::connect(addr).unwrap();
    prober
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let bounced = prober
        .roundtrip(r#"{"id":"probe","verb":"estimate","tags":200,"rounds":4}"#)
        .unwrap();
    assert!(
        bounced.contains("\"error\":\"overloaded\""),
        "full queue must bounce, got {bounced}"
    );

    assert!(slow.join().unwrap().contains("\"ok\":true"));
    assert!(queued.join().unwrap().contains("\"ok\":true"));
    handle.shutdown();
    let metrics = handle.join();
    assert_eq!(metrics.counter("server.overload"), 1);
    assert_eq!(metrics.counter("server.err.overloaded"), 1);
}
battery!(overload_replies_appear_exactly_when_queue_is_full);

fn queued_past_deadline_is_refused_without_execution(backend: Backend) {
    let handle = deterministic_server(backend, 1, 8);
    let addr = handle.addr();

    // Occupy the single worker: "late" then sits behind the slow job in
    // the FIFO queue, so its 1 ms deadline expires long before a worker
    // reaches it.
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        c.roundtrip(SLOW_LINE).unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));

    let mut client = Client::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let reply = client
        .roundtrip(r#"{"id":"late","verb":"estimate","tags":200,"rounds":4,"deadline_ms":1}"#)
        .unwrap();
    assert!(
        reply.contains("\"error\":\"deadline_exceeded\""),
        "expired deadline must be refused, got {reply}"
    );
    // Without a deadline the same request succeeds afterwards.
    let reply = client
        .roundtrip(r#"{"id":"patient","verb":"estimate","tags":200,"rounds":4}"#)
        .unwrap();
    assert!(reply.contains("\"ok\":true"), "{reply}");

    assert!(slow.join().unwrap().contains("\"ok\":true"));
    handle.shutdown();
    let metrics = handle.join();
    assert_eq!(metrics.counter("server.err.deadline_exceeded"), 1);
}
battery!(queued_past_deadline_is_refused_without_execution);

fn shutdown_drains_in_flight_work_before_the_socket_closes(backend: Backend) {
    let handle = deterministic_server(backend, 2, 32);
    let addr = handle.addr();
    let in_flight = 8;

    let replied = Arc::new(AtomicUsize::new(0));
    let started = Arc::new(Barrier::new(in_flight + 1));
    let workers: Vec<_> = (0..in_flight)
        .map(|i| {
            let replied = Arc::clone(&replied);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                started.wait();
                let line = format!(
                    r#"{{"id":"work-{i}","verb":"robustness","tags":400,"rounds":16,"runs":4,"miss_rates":[0,0.05]}}"#
                );
                let reply = c.roundtrip(&line).unwrap();
                replied.fetch_add(1, Ordering::SeqCst);
                reply
            })
        })
        .collect();

    started.wait();
    // Let the requests reach the queue, then pull the plug.
    std::thread::sleep(Duration::from_millis(50));
    let mut controller = Client::connect(addr).unwrap();
    controller
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let ack = controller
        .roundtrip(r#"{"id":"bye","verb":"shutdown"}"#)
        .unwrap();
    assert!(ack.contains("\"ok\":true"), "{ack}");
    assert!(ack.contains("\"drained\":true"), "{ack}");

    // Every in-flight request was answered — either with its result (it
    // was already queued) or with a structured shutting_down refusal (it
    // arrived after intake closed). Nothing is lost, nothing hangs.
    let mut ok = 0;
    let mut refused = 0;
    for w in workers {
        let reply = w.join().expect("client thread");
        if reply.contains("\"ok\":true") {
            ok += 1;
        } else {
            assert!(reply.contains("\"error\":\"shutting_down\""), "{reply}");
            refused += 1;
        }
    }
    assert_eq!(
        ok + refused,
        in_flight,
        "zero lost replies through shutdown"
    );
    assert!(ok > 0, "drain completed queued work");

    // Post-ack the listener is gone: fresh connections are refused (give
    // the accept loop a beat to drop the socket).
    let metrics = handle.join();
    let late = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
    assert!(late.is_err(), "listener must be closed after shutdown ack");
    assert_eq!(metrics.counter("server.req.shutdown"), 1);

    // An existing connection that asks again after shutdown is refused
    // structurally, not hung: the controller connection is still open.
    let reply = controller.roundtrip(r#"{"id":"again","verb":"estimate","tags":10}"#);
    if let Ok(reply) = reply {
        assert!(reply.contains("\"error\":\"shutting_down\""), "{reply}");
    } // an io error (connection torn down) is equally acceptable
}
battery!(shutdown_drains_in_flight_work_before_the_socket_closes);

/// The fleet-agent verb: raw responder counts must equal a locally built
/// shard roster's (the coordinator's whole correctness argument rests on
/// agents answering exactly what `pet-sim` would), and equal requests must
/// produce byte-identical replies.
fn reader_round_counts_match_a_local_shard_roster(backend: Backend) {
    let handle = deterministic_server(backend, 2, 16);
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let line = r#"{"id":"rr1","verb":"reader-round","tags":3000,"zones":4,"deploy_seed":"b","coverage":[0,1],"height":32,"path":"9f3c11e2"}"#;
    let reply = client.roundtrip(line).unwrap();
    let v = Json::parse(&reply).unwrap_or_else(|e| panic!("bad JSON {reply:?}: {e}"));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{reply}");

    // Rebuild the shard locally via the shared derivation and compare.
    let keys = pet_sim::multireader::shard_keys(3000, 4, 0xb, &[0, 1]);
    let config = pet_core::config::PetConfig::builder()
        .height(32)
        .build()
        .unwrap();
    let roster =
        pet_core::oracle::CodeRoster::new(&keys, &config, pet_hash::family::AnyFamily::default());
    let path = pet_core::bits::BitString::from_bits(0x9f3c_11e2, 32).unwrap();
    assert_eq!(
        v.get("population").and_then(Json::as_u64),
        Some(keys.len() as u64)
    );
    let counts = v.get("counts").and_then(Json::as_arr).expect("counts");
    assert_eq!(counts.len(), 32);
    for (i, c) in counts.iter().enumerate() {
        let len = i as u32 + 1;
        assert_eq!(
            c.as_u64(),
            Some(roster.count_prefix(&path, len)),
            "prefix length {len}"
        );
    }

    // Same request, same bytes — and an active-mode round (per-round seed)
    // answers from freshly hashed codes, reproducibly.
    assert_eq!(client.roundtrip(line).unwrap(), reply);
    let active = r#"{"id":"rr2","verb":"reader-round","tags":3000,"zones":4,"deploy_seed":"b","coverage":[0,1],"height":32,"path":"9f3c11e2","round_seed":"deadbeef"}"#;
    let first = client.roundtrip(active).unwrap();
    assert!(first.contains("\"ok\":true"), "{first}");
    assert_eq!(client.roundtrip(active).unwrap(), first);
    assert_ne!(first, reply, "per-round seed must change the codes");

    client
        .roundtrip(r#"{"id":"bye","verb":"shutdown"}"#)
        .unwrap();
    handle.join();
}
battery!(reader_round_counts_match_a_local_shard_roster);

/// The degenerate deployment — one worker, one queue slot — under
/// concurrent closed-loop load: every request is answered (ok or a clean
/// `overloaded` bounce), nothing is lost or hung.
fn capacity_one_queue_survives_concurrent_load(backend: Backend) {
    let handle = deterministic_server(backend, 1, 1);
    let addr = handle.addr();
    let sent = 6 * 8;
    let ok = Arc::new(AtomicUsize::new(0));
    let bounced = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for t in 0..6 {
            let ok = Arc::clone(&ok);
            let bounced = Arc::clone(&bounced);
            scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                for i in 0..8 {
                    let line =
                        format!(r#"{{"id":"q{t}-{i}","verb":"estimate","tags":300,"rounds":8}}"#);
                    let reply = c.roundtrip(&line).expect("every request gets a reply");
                    if reply.contains("\"ok\":true") {
                        ok.fetch_add(1, Ordering::SeqCst);
                    } else {
                        assert!(reply.contains("\"error\":\"overloaded\""), "{reply}");
                        bounced.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });
    assert_eq!(
        ok.load(Ordering::SeqCst) + bounced.load(Ordering::SeqCst),
        sent
    );
    assert!(ok.load(Ordering::SeqCst) > 0, "some work must get through");
    handle.shutdown();
    let metrics = handle.join();
    assert_eq!(
        metrics.counter("server.ok"),
        ok.load(Ordering::SeqCst) as u64
    );
    assert_eq!(
        metrics.counter("server.overload"),
        bounced.load(Ordering::SeqCst) as u64
    );
}
battery!(capacity_one_queue_survives_concurrent_load);

/// Shutdown issued while requests are verifiably *still queued* (the lone
/// worker is pinned by a slow job): the ack must wait for the drain and
/// still report `drained:true`, and every queued request must be answered
/// with its real result.
fn shutdown_while_requests_are_queued_still_reports_drained(backend: Backend) {
    let handle = deterministic_server(backend, 1, 8);
    let addr = handle.addr();

    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        c.roundtrip(SLOW_LINE).unwrap()
    });
    // Let the worker dequeue the slow job, then stack three requests in
    // the queue behind it.
    std::thread::sleep(Duration::from_millis(100));
    let queued: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
                c.roundtrip(&format!(
                    r#"{{"id":"stuck-{i}","verb":"estimate","tags":200,"rounds":4}}"#
                ))
                .unwrap()
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(80));

    // The queue now verifiably holds work (single worker is mid-sweep).
    let mut controller = Client::connect(addr).unwrap();
    controller
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let ack = controller
        .roundtrip(r#"{"id":"bye","verb":"shutdown"}"#)
        .unwrap();
    assert!(ack.contains("\"drained\":true"), "{ack}");

    assert!(slow.join().unwrap().contains("\"ok\":true"));
    for q in queued {
        let reply = q.join().unwrap();
        assert!(
            reply.contains("\"ok\":true"),
            "queued work must complete through the drain: {reply}"
        );
    }
    let metrics = handle.join();
    // slow + 3 queued, plus the shutdown ack itself.
    assert_eq!(metrics.counter("server.ok"), 5);
}
battery!(shutdown_while_requests_are_queued_still_reports_drained);

fn telemetry_snapshot_reports_red_metrics(backend: Backend) {
    let handle = deterministic_server(backend, 2, 16);
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    for i in 0..5 {
        let line = format!(r#"{{"id":"e{i}","verb":"estimate","tags":300,"rounds":4}}"#);
        assert!(client.roundtrip(&line).unwrap().contains("\"ok\":true"));
    }
    let bad = client.roundtrip("this is not json").unwrap();
    assert!(bad.contains("\"error\":\"bad_request\""), "{bad}");

    let reply = client
        .roundtrip(r#"{"id":"snap","verb":"telemetry-snapshot"}"#)
        .unwrap();
    let v = Json::parse(&reply).expect("snapshot reply is JSON");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let snapshot = v.get("snapshot").expect("snapshot body");
    let counters = snapshot.get("counters").expect("counters");
    assert_eq!(
        counters.get("server.req.estimate").and_then(Json::as_u64),
        Some(5)
    );
    assert_eq!(counters.get("server.ok").and_then(Json::as_u64), Some(5));
    assert_eq!(
        counters
            .get("server.err.bad_request")
            .and_then(Json::as_u64),
        Some(1)
    );
    let spans = snapshot.get("spans").expect("spans");
    let lat = spans.get("server.request").expect("latency histogram");
    assert_eq!(lat.get("count").and_then(Json::as_u64), Some(5));
    assert!(lat.get("p99_ns").and_then(Json::as_u64).is_some());

    client
        .roundtrip(r#"{"id":"bye","verb":"shutdown"}"#)
        .unwrap();
    handle.join();
}
battery!(telemetry_snapshot_reports_red_metrics);

/// One monitor subscription line: `updates` re-estimates over a churning
/// population with a missing-tag burst at update 4.
fn monitor_line(id: &str, updates: u32) -> String {
    format!(
        r#"{{"id":"{id}","verb":"monitor","tags":400,"updates":{updates},"window":3,"rounds":8,"churn_rate":5,"burst_at":4,"burst_size":250,"epsilon":0.2,"delta":0.2}}"#
    )
}

/// Reads the full monitor stream for a subscription of `updates` updates:
/// `updates` delta lines plus the final summary line.
fn read_stream(client: &mut Client, updates: u32) -> Vec<String> {
    (0..=updates)
        .map(|_| client.recv().expect("stream line"))
        .collect()
}

/// A subscription delivers exactly K delta lines (ids echoed, update
/// indices in order) capped by one summary line, and the connection stays
/// usable for ordinary requests afterwards.
fn monitor_subscription_delivers_every_delta_then_summary(backend: Backend) {
    let handle = deterministic_server(backend, 2, 16);
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();

    let updates = 6u32;
    client.send(&monitor_line("sub", updates)).unwrap();
    let lines = read_stream(&mut client, updates);
    for (i, line) in lines.iter().take(updates as usize).enumerate() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad JSON {line:?}: {e}"));
        assert_eq!(v.get("id").and_then(Json::as_str), Some("sub"), "{line}");
        assert_eq!(
            v.get("verb").and_then(Json::as_str),
            Some("monitor-delta"),
            "{line}"
        );
        assert_eq!(
            v.get("update").and_then(Json::as_u64),
            Some(i as u64),
            "deltas arrive in update order: {line}"
        );
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{line}");
    }
    let summary = Json::parse(&lines[updates as usize]).expect("summary is JSON");
    assert_eq!(summary.get("verb").and_then(Json::as_str), Some("monitor"));
    assert_eq!(
        summary.get("updates").and_then(Json::as_u64),
        Some(u64::from(updates))
    );
    // The burst at update 4 removes 250 of ~400 tags — well past the
    // default 0.5 alarm fraction, so the alarm must have fired.
    assert!(
        summary.get("first_alarm").and_then(Json::as_u64).is_some(),
        "burst must trip the alarm: {}",
        lines[updates as usize]
    );

    // The stream is exactly updates+1 lines: the very next reply on this
    // connection answers a fresh request, not a stray delta.
    let after = client
        .roundtrip(r#"{"id":"after","verb":"estimate","tags":100,"rounds":4}"#)
        .unwrap();
    let v = Json::parse(&after).unwrap();
    assert_eq!(v.get("id").and_then(Json::as_str), Some("after"), "{after}");
    assert_eq!(v.get("verb").and_then(Json::as_str), Some("estimate"));

    client
        .roundtrip(r#"{"id":"bye","verb":"shutdown"}"#)
        .unwrap();
    handle.join();
}
battery!(monitor_subscription_delivers_every_delta_then_summary);

/// In deterministic mode the whole stream — every delta and the summary —
/// is a pure function of the request, so two independently started servers
/// produce byte-identical streams.
fn monitor_streams_are_byte_identical_across_instances(backend: Backend) {
    let run = || {
        let handle = deterministic_server(backend, 2, 16);
        let mut client = Client::connect(handle.addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        client.send(&monitor_line("twin", 8)).unwrap();
        let lines = read_stream(&mut client, 8);
        handle.shutdown();
        handle.join();
        lines
    };
    let first = run();
    let second = run();
    assert_eq!(first.len(), 9);
    assert_eq!(first, second, "streams must be byte-identical");
}
battery!(monitor_streams_are_byte_identical_across_instances);

/// Shutdown issued while a subscription is streaming: the drain completes
/// the in-flight monitor job, so the subscriber still receives every delta
/// and the summary — zero lost deltas — before the listener closes.
fn monitor_shutdown_drains_the_full_stream(backend: Backend) {
    let handle = deterministic_server(backend, 1, 4);
    let addr = handle.addr();

    let updates = 10u32;
    let subscriber = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        // Enough work per update that the shutdown below lands mid-stream.
        client
            .send(&format!(
                r#"{{"id":"drain","verb":"monitor","tags":20000,"updates":{updates},"window":3,"rounds":64,"churn_rate":50,"burst_at":6,"burst_size":15000}}"#
            ))
            .unwrap();
        read_stream(&mut client, updates)
    });
    // Let the subscription reach the worker, then pull the plug.
    std::thread::sleep(Duration::from_millis(100));
    let mut controller = Client::connect(addr).unwrap();
    controller
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let ack = controller
        .roundtrip(r#"{"id":"bye","verb":"shutdown"}"#)
        .unwrap();
    assert!(ack.contains("\"drained\":true"), "{ack}");

    let lines = subscriber.join().expect("subscriber thread");
    assert_eq!(
        lines.len(),
        updates as usize + 1,
        "zero lost deltas through shutdown"
    );
    for (i, line) in lines.iter().take(updates as usize).enumerate() {
        assert!(line.contains("\"verb\":\"monitor-delta\""), "{line}");
        assert!(line.contains(&format!("\"update\":{i}")), "{line}");
    }
    assert!(
        lines[updates as usize].contains("\"verb\":\"monitor\""),
        "{}",
        lines[updates as usize]
    );
    handle.join();
}
battery!(monitor_shutdown_drains_the_full_stream);

fn explicit_seed_pins_the_estimate_bit_for_bit(backend: Backend) {
    // Even outside deterministic mode, an explicit seed fully determines
    // the reply — the per-process entropy only covers derived seeds.
    let run = |deterministic: bool| {
        let handle = serve(&ServerConfig {
            backend,
            deterministic,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut c = Client::connect(handle.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let reply = c
            .roundtrip(r#"{"id":"pin","verb":"estimate","tags":1000,"rounds":16,"seed":42}"#)
            .unwrap();
        handle.shutdown();
        handle.join();
        reply
    };
    assert_eq!(run(false), run(true));
}
battery!(explicit_seed_pins_the_estimate_bit_for_bit);
