//! Proptest fuzz of the wire protocol.
//!
//! The contract under attack: **any** request line — arbitrary bytes,
//! malformed JSON, truncated valid requests, out-of-range parameters —
//! yields a structured JSON error reply, never a panic and never a hung
//! connection. Exercised twice: in-process against [`parse_request`] (fast,
//! thousands of cases) and against live server sockets (real framing,
//! read timeouts as the hang detector). Every socket case runs against
//! **both backends** — one long-lived server per backend — and the
//! generated-line fuzz additionally asserts the two backends answer each
//! line with byte-identical replies (both run the same deterministic
//! `ServiceCore`, so any divergence is a transport bug).

use pet_server::json::Json;
use pet_server::{parse_request, serve, Backend, Client, ServerConfig};
use proptest::prelude::*;
use std::net::SocketAddr;
use std::sync::OnceLock;
use std::time::Duration;

const BACKENDS: [Backend; 2] = [Backend::Threaded, Backend::Evented];

/// One shared live server per backend for the socket cases; leaked on
/// purpose — the process exit is their shutdown.
fn fuzz_server(backend: Backend) -> SocketAddr {
    static ADDRS: OnceLock<[SocketAddr; 2]> = OnceLock::new();
    let addrs = ADDRS.get_or_init(|| {
        BACKENDS.map(|backend| {
            let handle = serve(&ServerConfig {
                backend,
                workers: 2,
                queue_capacity: 16,
                deterministic: true,
                ..ServerConfig::default()
            })
            .expect("bind fuzz server");
            let addr = handle.addr();
            std::mem::forget(handle);
            addr
        })
    });
    match backend {
        Backend::Threaded => addrs[0],
        Backend::Evented => addrs[1],
    }
}

/// A valid request every mutation strategy starts from.
const VALID: &str = r#"{"id":"fuzz","verb":"estimate","tags":300,"rounds":4,"seed":7}"#;

fn connect(addr: SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    client
}

/// Asserts the reply is one well-formed JSON object: an id echo (or null),
/// and either `ok:true` or a structured error code.
fn assert_structured(reply: &str) {
    let v = Json::parse(reply).unwrap_or_else(|e| panic!("unparseable reply {reply:?}: {e}"));
    assert!(v.get("id").is_some(), "reply lacks id: {reply}");
    match v.get("ok").and_then(Json::as_bool) {
        Some(true) => {}
        Some(false) => {
            let code = v.get("error").and_then(Json::as_str).unwrap_or("");
            assert!(
                matches!(
                    code,
                    "bad_request"
                        | "overloaded"
                        | "deadline_exceeded"
                        | "shutting_down"
                        | "internal"
                ),
                "unknown error code in {reply}"
            );
        }
        None => panic!("reply lacks ok flag: {reply}"),
    }
}

/// Tiny splitmix64 so one `u64` seed drives a whole generated line (the
/// vendored proptest intentionally has no string/oneof strategies).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// JSON-ish line mutations: raw garbage, truncations of a valid request,
/// random field soup, and single-byte corruptions of a valid request.
/// Newlines never appear (they would be two protocol lines).
fn build_line(kind: usize, seed: u64) -> String {
    let mut s = seed;
    match kind {
        // Raw garbage over a nasty palette (quotes, braces, unicode,
        // control-adjacent bytes).
        0 => {
            const PALETTE: &[char] = &[
                '{', '}', '[', ']', '"', '\\', ':', ',', '-', '.', 'e', '0', '7', 'a', 'z', ' ',
                '\t', '\u{0}', '\u{1b}', 'é', '💥', '\u{7f}',
            ];
            let len = (mix(&mut s) % 48) as usize;
            (0..len)
                .map(|_| PALETTE[(mix(&mut s) as usize) % PALETTE.len()])
                .collect()
        }
        // Truncation of a valid request at an arbitrary char boundary.
        1 => {
            let cut = (mix(&mut s) as usize) % (VALID.len() + 1);
            let mut line = VALID.to_string();
            line.truncate(cut); // VALID is ASCII, every cut is a boundary
            line
        }
        // Field soup: a JSON object with known + random keys and scalar
        // values in random positions.
        2 => {
            const KEYS: &[&str] = &[
                "id",
                "verb",
                "tags",
                "rounds",
                "seed",
                "deadline_ms",
                "miss",
                "false_busy",
                "probes",
                "trim",
                "epsilon",
                "delta",
                "backend",
                "runs",
                "zzz",
            ];
            const VALUES: &[&str] = &[
                "null",
                "true",
                "false",
                "0",
                "-1",
                "2.5",
                "1e308",
                "10000001",
                "\"estimate\"",
                "\"robustness\"",
                "\"oracle\"",
                "\"\"",
                "\"x\"",
                "[]",
                "{}",
                "[0,0.5]",
            ];
            let fields = (mix(&mut s) % 8) as usize;
            let body: Vec<String> = (0..fields)
                .map(|_| {
                    let k = KEYS[(mix(&mut s) as usize) % KEYS.len()];
                    let v = VALUES[(mix(&mut s) as usize) % VALUES.len()];
                    format!("\"{k}\":{v}")
                })
                .collect();
            format!("{{{}}}", body.join(","))
        }
        // Single-byte corruption of a valid request.
        _ => {
            let mut bytes = VALID.as_bytes().to_vec();
            let at = (mix(&mut s) as usize) % bytes.len();
            bytes[at] = (mix(&mut s) % 0x7f) as u8;
            bytes
                .into_iter()
                .map(|b| if b == b'\n' || b == b'\r' { b' ' } else { b })
                .map(char::from)
                .collect()
        }
    }
}

fn line_strategy() -> impl Strategy<Value = String> {
    (0..4usize, any::<u64>()).prop_map(|(kind, seed)| build_line(kind, seed))
}

proptest! {
    /// The parser itself never panics and classifies every line: either a
    /// well-formed request or an error with a non-empty detail.
    #[test]
    fn parse_request_never_panics(line in line_strategy()) {
        match parse_request(&line) {
            Ok(req) => prop_assert!(!req.id.is_empty()),
            Err(e) => prop_assert!(!e.detail.is_empty(), "empty error detail for {line:?}"),
        }
    }

    /// Live servers: any single line gets exactly one structured reply on
    /// each backend, the connection stays usable for a valid request
    /// afterwards, and — the servers being deterministic — the two
    /// backends answer every line with byte-identical replies.
    #[test]
    fn live_servers_reply_structurally_and_identically_to_garbage(line in line_strategy()) {
        let payload: String = line.chars().filter(|c| *c != '\n' && *c != '\r').collect();
        let mut garbage_replies: Vec<String> = Vec::new();
        let mut valid_replies: Vec<String> = Vec::new();
        for backend in BACKENDS {
            let mut client = connect(fuzz_server(backend));
            if !payload.trim().is_empty() {
                // Blank (all-whitespace) lines are tolerated silently;
                // everything else replies.
                let reply = client.roundtrip(&payload).expect("one reply per line");
                assert_structured(&reply);
                garbage_replies.push(reply);
            }
            // The connection is not wedged: a valid request still works.
            let reply = client.roundtrip(VALID).expect("connection still usable");
            assert_structured(&reply);
            prop_assert!(reply.contains("\"ok\":true"), "valid request failed: {reply}");
            valid_replies.push(reply);
        }
        if let [threaded, evented] = garbage_replies.as_slice() {
            prop_assert_eq!(threaded, evented, "backends disagree on {:?}", payload);
        }
        prop_assert_eq!(&valid_replies[0], &valid_replies[1]);
    }
}

#[test]
fn truncated_requests_all_reply_with_bad_request() {
    // Every strict prefix of a valid request is malformed; the server must
    // answer each one on the same connection without dropping it.
    for backend in BACKENDS {
        let mut client = connect(fuzz_server(backend));
        for cut in 1..VALID.len() {
            if !VALID.is_char_boundary(cut) {
                continue;
            }
            let reply = client
                .roundtrip(&VALID[..cut])
                .expect("reply to truncated request");
            assert_structured(&reply);
            assert!(
                reply.contains("\"error\":\"bad_request\""),
                "prefix {cut}: {reply}"
            );
        }
        let reply = client.roundtrip(VALID).expect("full request");
        assert!(reply.contains("\"ok\":true"), "{reply}");
    }
}

#[test]
fn oversized_line_is_refused_then_connection_closed() {
    for backend in BACKENDS {
        let mut client = connect(fuzz_server(backend));
        let huge = format!(
            r#"{{"id":"big","verb":"estimate","tags":10,"pad":"{}"}}"#,
            "x".repeat(pet_server::MAX_LINE_BYTES)
        );
        let reply = client.roundtrip(&huge).expect("structured refusal first");
        assert_structured(&reply);
        assert!(reply.contains("\"error\":\"bad_request\""), "{reply}");
        // After an oversized line the server drops the connection (framing
        // is unrecoverable): the next roundtrip fails instead of hanging.
        assert!(client.roundtrip(VALID).is_err());
    }
}

#[test]
fn non_utf8_bytes_get_a_structured_reply() {
    for backend in BACKENDS {
        let mut client = connect(fuzz_server(backend));
        client
            .send_raw(&[0xff, 0xfe, 0x80, b'{', b'}', b'\n'])
            .expect("send raw bytes");
        let reply = client.read_reply().expect("reply to non-UTF-8 line");
        assert_structured(&reply);
        assert!(reply.contains("\"error\":\"bad_request\""), "{reply}");
        // Framing intact: valid traffic continues on the same connection.
        let reply = client.roundtrip(VALID).expect("still usable");
        assert!(reply.contains("\"ok\":true"), "{reply}");
    }
}

#[test]
fn adversarial_parameter_corners_are_rejected_not_executed() {
    let cases = [
        // Over-limit work requests must be refused up front.
        r#"{"id":"big","verb":"estimate","tags":10000001}"#,
        r#"{"id":"big","verb":"estimate","tags":100,"rounds":1000001}"#,
        r#"{"id":"big","verb":"robustness","runs":257}"#,
        // Contradictory / out-of-domain knobs.
        r#"{"id":"x","verb":"estimate","tags":100,"probes":2,"trim":1}"#,
        r#"{"id":"x","verb":"estimate","tags":100,"miss":1.5}"#,
        r#"{"id":"x","verb":"estimate","tags":100,"epsilon":0}"#,
        r#"{"id":"x","verb":"estimate","tags":0}"#,
        r#"{"id":"x","verb":"estimate","tags":-5}"#,
        r#"{"id":"x","verb":"estimate","tags":2.5}"#,
        // Structural abuse.
        r#"{"id":"x","verb":"estimate","tags":100,"tags":200}"#,
        r#"{"id":"","verb":"estimate","tags":100}"#,
        r#"{"id":42,"verb":"estimate","tags":100}"#,
        r#"{"verb":"estimate","tags":100}"#,
        r#"{"id":"x","verb":"launch-missiles"}"#,
        r#"{"id":"x"}"#,
        r#"[1,2,3]"#,
        r#""just a string""#,
        "null",
        r#"{"id":"x","verb":"estimate","tags":1e309}"#,
        r#"{"id":"x","verb":"estimate","deadline_ms":0,"tags":10}"#,
    ];
    for backend in BACKENDS {
        let mut client = connect(fuzz_server(backend));
        for line in cases {
            let reply = client.roundtrip(line).expect("reply");
            assert_structured(&reply);
            assert!(
                reply.contains("\"error\":\"bad_request\""),
                "{line} => {reply}"
            );
        }
        let reply = client.roundtrip(VALID).expect("still usable");
        assert!(reply.contains("\"ok\":true"), "{reply}");
    }
}
