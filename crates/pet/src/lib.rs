//! # PET: Probabilistic Estimating Tree for large-scale RFID estimation
//!
//! Facade crate for the full reproduction of Zheng & Li, *"PET:
//! Probabilistic Estimating Tree for Large-Scale RFID Estimation"*
//! (ICDCS 2011 / IEEE TMC 2012): the PET protocol, every substrate it runs
//! on, the baselines it is evaluated against, and the experiment engine
//! that regenerates the paper's tables and figures.
//!
//! Most applications only need the [`prelude`]:
//!
//! ```
//! use pet::prelude::*;
//!
//! let mut rng = StdRng::seed_from_u64(2024);
//! // 30,000 pallets with passive tags.
//! let pallets = TagPopulation::sequential(30_000);
//! // ±5% at 99% confidence — the paper's default requirement. The
//! // `Estimator` picks the execution backend from the configuration
//! // (batched kernel by default; `Backend::Oracle` replays slot by slot).
//! let estimator = Estimator::new(PetConfig::paper_default());
//! let report = estimator.estimate_population(&pallets, &mut rng);
//! assert!((report.estimate - 30_000.0).abs() <= 0.05 * 30_000.0);
//! println!(
//!     "≈{:.0} tags in {} slots ({} rounds × 5)",
//!     report.estimate, report.metrics.slots, report.rounds
//! );
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`pet_core`] (as `pet::core`) | The PET protocol: tree, paths, readers, tag logic, sessions |
//! | [`pet_tags`] (as `pet::tags`) | EPC-96 identities, populations, churn, zone mobility |
//! | [`pet_phy`] (as `pet::phy`) | Slotted MAC, channel models, air-cost accounting |
//! | [`pet_hash`] (as `pet::hash`) | MD5/SHA-1 (from scratch), mixers, geometric hashing |
//! | [`pet_stats`] (as `pet::stats`) | erf/quantiles, accuracy→rounds, gray-node distribution |
//! | [`pet_baselines`] (as `pet::baselines`) | FNEB, LoF, USE, UPE, EZB behind one trait |
//! | [`pet_ident`] (as `pet::ident`) | Aloha + tree-walk identification (the Θ(n) alternative) |
//! | [`pet_apps`] (as `pet::apps`) | Missing-tag monitor, capacity guard, trend tracker |
//! | [`pet_firmware`] (as `pet::firmware`) | no_std tag chip (bitwise-only state machine) |
//! | [`pet_sim`] (as `pet::sim`) | Multi-reader controller, trial runner, §5 experiments |
//! | [`pet_server`] (as `pet::server`) | Estimation service: line-JSON protocol over threaded or sharded-evented backends, backpressure, deadlines |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pet_apps as apps;
pub use pet_baselines as baselines;
pub use pet_core as core;
pub use pet_firmware as firmware;
pub use pet_hash as hash;
pub use pet_ident as ident;
pub use pet_phy as phy;
pub use pet_server as server;
pub use pet_sim as sim;
pub use pet_stats as stats;
pub use pet_tags as tags;

/// The working set most applications need.
pub mod prelude {
    pub use pet_baselines::{CardinalityEstimator, Estimate, Fidelity};
    pub use pet_core::config::{Backend, CommandEncoding, PetConfig, SearchStrategy, TagMode};
    pub use pet_core::error::PetError;
    pub use pet_core::front::Estimator;
    pub use pet_core::session::{EstimateReport, PetSession};
    pub use pet_phy::channel::ChannelModel;
    pub use pet_phy::{Air, AirMetrics, PhyProfile, PhyReport, TimeModel};
    pub use pet_stats::accuracy::Accuracy;
    pub use pet_tags::population::TagPopulation;
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_happy_path() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = TagPopulation::sequential(1_000);
        let config = PetConfig::builder()
            .accuracy(Accuracy::new(0.2, 0.2).unwrap())
            .build()
            .unwrap();
        let report = Estimator::new(config).estimate_population(&pop, &mut rng);
        assert!(report.estimate > 0.0);
        assert!(report.try_confidence_interval(0.05).is_ok());
    }

    #[test]
    fn prelude_backend_switch_is_invisible_to_results() {
        let keys: Vec<u64> = (0..400).collect();
        let mut reports = Vec::new();
        for backend in [Backend::Oracle, Backend::Kernel] {
            let config = PetConfig::builder()
                .accuracy(Accuracy::new(0.2, 0.2).unwrap())
                .backend(backend)
                .build()
                .unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            reports.push(Estimator::new(config).estimate_keys_rounds(&keys, 24, &mut rng));
        }
        assert_eq!(reports[0].estimate.to_bits(), reports[1].estimate.to_bits());
        assert_eq!(reports[0].records, reports[1].records);
    }
}
