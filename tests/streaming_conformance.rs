//! Streaming-conformance suite: the `pet-core::monitor` layer must be a
//! *pure composition* of one-shot estimates — no hidden state, no extra
//! randomness, no backend divergence.
//!
//! Three pins:
//!
//! 1. **Zero-churn differential** (property): with a fixed key set, every
//!    monitor update is bit-for-bit the one-shot
//!    [`Estimator::try_estimate_keys_rounds`] run under the derived
//!    [`update_seed`], and the windowed value is bit-for-bit the
//!    [`windowed_mean`] fold of those raw estimates — on both the Oracle
//!    and Kernel backends.
//! 2. **Golden churn trace**: a fixed-seed run with steady join/leave
//!    churn plus one missing-tag burst pins every per-update estimate,
//!    windowed value, differential, and the alarm-fire update in
//!    `tests/golden/monitor_trace.csv`. Re-bless after an intentional
//!    protocol change with `PET_BLESS=1 cargo test -p pet --test
//!    streaming_conformance`.
//! 3. **Replay determinism**: producing the trace twice from scratch gives
//!    identical bytes — the property the server's byte-identical monitor
//!    streams and the sim sweep's ledger rows stand on.

use pet::prelude::*;
use pet_core::monitor::{update_seed, windowed_mean, Monitor, MonitorConfig};
use pet_tags::dynamics::{ChurnSchedule, Timeline};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::path::Path;

fn config(backend: Backend) -> PetConfig {
    PetConfig::builder()
        .accuracy(Accuracy::new(0.2, 0.2).unwrap())
        .backend(backend)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite 1: zero churn ⇒ the monitor is exactly the one-shot
    /// estimator run once per update under `update_seed(base, i)`, with
    /// the window a pure fold over the raw estimates. Both backends.
    #[test]
    fn zero_churn_monitor_equals_one_shot(
        n in 1usize..1_500,
        rounds in 1u32..40,
        window in 1usize..6,
        base_seed in any::<u64>(),
    ) {
        let keys: Vec<u64> = TagPopulation::sequential(n).keys().collect();
        for backend in [Backend::Oracle, Backend::Kernel] {
            let mut monitor = Monitor::new(MonitorConfig {
                config: config(backend),
                rounds,
                window,
                alarm_fraction: 0.5,
                reference: None,
                base_seed,
            })
            .unwrap();
            let estimator = Estimator::new(config(backend));
            let mut raw = Vec::new();
            for i in 0..4u64 {
                let update = monitor.observe_keys(&keys).unwrap();
                let mut rng = StdRng::seed_from_u64(update_seed(base_seed, i));
                let solo = estimator
                    .try_estimate_keys_rounds(&keys, rounds, &mut rng)
                    .unwrap();
                prop_assert_eq!(
                    update.estimate.to_bits(),
                    solo.estimate.to_bits(),
                    "update {} must equal the one-shot run ({:?} backend)",
                    i,
                    backend
                );
                prop_assert_eq!(update.seed, update_seed(base_seed, i));
                raw.push(solo.estimate);
                let start = raw.len().saturating_sub(window);
                prop_assert_eq!(
                    update.windowed.to_bits(),
                    windowed_mean(raw[start..].iter().copied()).to_bits(),
                    "windowed value must be the pure fold of raw estimates"
                );
                let expect_delta = if raw.len() > 1 {
                    raw[raw.len() - 1] - raw[raw.len() - 2]
                } else {
                    0.0
                };
                prop_assert_eq!(update.delta.to_bits(), expect_delta.to_bits());
            }
        }
    }
}

/// The fixed churn scenario behind the golden trace: steady churn of 5
/// tags/update on 600 tags, then a burst of 400 leaving at update 6.
fn churn_trace() -> String {
    let mut monitor = Monitor::new(MonitorConfig {
        config: config(Backend::Kernel),
        rounds: 32,
        window: 3,
        alarm_fraction: 0.6,
        reference: Some(600.0),
        base_seed: 0x00C0_FFEE,
    })
    .unwrap();
    let schedule = ChurnSchedule {
        rate: 5,
        burst_at: Some(6),
        burst_size: 400,
    };
    let mut timeline = Timeline::new(TagPopulation::sequential(600));
    let mut out = String::from("update,population,estimate,windowed,delta,alarm\n");
    for update in 0..10usize {
        for event in schedule.events_at(update) {
            timeline.apply(event);
        }
        let keys: Vec<u64> = timeline.population().keys().collect();
        let u = monitor.observe_keys(&keys).unwrap();
        // `{:?}` prints the shortest f64 representation that round-trips,
        // so equal bytes ⇔ equal bits.
        writeln!(
            out,
            "{},{},{:?},{:?},{:?},{}",
            u.index,
            keys.len(),
            u.estimate,
            u.windowed,
            u.delta,
            u.alarm
        )
        .unwrap();
    }
    out
}

/// Satellite 2: the golden churn trace. Pins per-update estimates and the
/// alarm-fire update byte for byte; `PET_BLESS=1` re-blesses.
#[test]
fn golden_churn_trace_matches() {
    let produced = churn_trace();

    // Structural checks first, independent of the golden bytes: the alarm
    // must fire only after the burst at update 6, and stay quiet before.
    let alarm_updates: Vec<usize> = produced
        .lines()
        .skip(1)
        .enumerate()
        .filter(|(_, line)| line.ends_with("true"))
        .map(|(i, _)| i)
        .collect();
    assert!(
        !alarm_updates.is_empty(),
        "losing 400 of 600 tags must trip a 0.6 alarm fraction"
    );
    assert!(
        alarm_updates[0] >= 6,
        "alarm before the burst (update {}) is a false positive",
        alarm_updates[0]
    );

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/monitor_trace.csv");
    if std::env::var("PET_BLESS").is_ok_and(|v| !v.is_empty()) {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &produced).unwrap();
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden missing — run once with PET_BLESS=1 to create it, then commit the file");
    assert_eq!(
        produced, golden,
        "monitor trace drifted from tests/golden/monitor_trace.csv; if the \
         change is intentional, re-bless with PET_BLESS=1 and commit"
    );
}

/// Satellite/acceptance: the trace (and hence every monitor consumer —
/// server streams, sim sweep, ledger rows) replays bit for bit.
#[test]
fn churn_trace_replays_bit_for_bit() {
    assert_eq!(churn_trace(), churn_trace());
}
