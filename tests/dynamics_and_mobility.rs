//! Dynamic tag sets and multi-reader mobility (§4.6.3), end to end.

use pet::prelude::*;
use pet::sim::Deployment;
use pet::tags::dynamics::{ChurnEvent, Timeline};
use pet::tags::mobility::ZoneField;
use pet_phy::channel::LossyChannel;

fn quick_config() -> PetConfig {
    PetConfig::builder()
        .accuracy(Accuracy::new(0.2, 0.2).unwrap())
        .build()
        .unwrap()
}

/// Estimates track a churning population snapshot by snapshot.
#[test]
fn estimates_track_churn() {
    let session = PetSession::new(quick_config());
    let mut timeline = Timeline::new(TagPopulation::sequential(4_000));
    let mut rng = StdRng::seed_from_u64(1);
    for (event, expected) in [
        (ChurnEvent::Join(4_000), 8_000usize),
        (ChurnEvent::Leave(6_000), 2_000),
        (ChurnEvent::Join(1_000), 3_000),
    ] {
        let size = timeline.apply(event);
        assert_eq!(size, expected);
        let report = session.estimate_population_rounds(timeline.population(), 384, &mut rng);
        let rel = (report.estimate - expected as f64).abs() / expected as f64;
        assert!(rel < 0.2, "after {event:?}: estimate {}", report.estimate);
    }
}

/// Mobility between estimates does not change what a fully-covering
/// deployment reports.
#[test]
fn mobility_between_estimates_is_invisible_under_full_coverage() {
    let n = 6_000usize;
    let pop = TagPopulation::sequential(n);
    let mut rng = StdRng::seed_from_u64(2);
    let mut field = ZoneField::uniform(n, 4, &mut rng);
    let coverages = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]];
    let config = quick_config();
    for step in 0..3 {
        let deployment = Deployment::new(&pop, field.clone(), coverages.clone());
        let report = deployment.estimate(&config, 384, ChannelModel::Perfect, &mut rng);
        assert_eq!(
            report.covered_tags, n as u64,
            "full coverage at step {step}"
        );
        let rel = (report.estimate - n as f64).abs() / n as f64;
        assert!(rel < 0.2, "step {step}: estimate {}", report.estimate);
        field.step(0.5, &mut rng);
    }
}

/// A tag crossing into an overlap mid-deployment is still counted once —
/// §4.6.3's "equivalent to that of the multiple readers" argument for
/// mobile tags, tested by comparing a clustered and a spread population.
#[test]
fn overlap_crossing_tags_counted_once() {
    let n = 5_000usize;
    let pop = TagPopulation::sequential(n);
    let config = quick_config();
    let mut rng = StdRng::seed_from_u64(3);
    // All tags piled into zone 0, which *every* reader covers.
    let field = ZoneField::clustered(n, 3);
    let coverages = vec![vec![0, 1], vec![0, 2], vec![0]];
    let deployment = Deployment::new(&pop, field, coverages);
    let report = deployment.estimate(&config, 384, ChannelModel::Perfect, &mut rng);
    let rel = (report.estimate - n as f64).abs() / n as f64;
    assert!(
        rel < 0.2,
        "triple-covered tags: estimate {}",
        report.estimate
    );
}

/// Lossy readers in a multi-reader deployment: overlap provides diversity —
/// a tag missed by one reader can still be heard by another, so overlapping
/// lossy coverage beats single lossy coverage.
#[test]
fn overlap_mitigates_reader_loss() {
    let n = 5_000usize;
    let pop = TagPopulation::sequential(n);
    let config = quick_config();
    let lossy = ChannelModel::Lossy(LossyChannel::new(0.4, 0.0).unwrap());
    let rounds = 512;

    // Single lossy reader covering everything.
    let single = Deployment::new(&pop, ZoneField::clustered(n, 1), vec![vec![0]]);
    let mut rng = StdRng::seed_from_u64(4);
    let single_report = single.estimate(&config, rounds, lossy, &mut rng);

    // Three lossy readers all covering the same zone: 0.4³ effective miss.
    let triple = Deployment::new(
        &pop,
        ZoneField::clustered(n, 1),
        vec![vec![0], vec![0], vec![0]],
    );
    let mut rng = StdRng::seed_from_u64(4);
    let triple_report = triple.estimate(&config, rounds, lossy, &mut rng);

    let err = |e: f64| (e - n as f64).abs() / n as f64;
    assert!(
        err(triple_report.estimate) < err(single_report.estimate) + 0.02,
        "triple {} vs single {}",
        triple_report.estimate,
        single_report.estimate
    );
    // And the redundant deployment must be near-unbiased.
    assert!(err(triple_report.estimate) < 0.15);
}

/// The zero probe works through the multi-reader controller too.
#[test]
fn controller_detects_empty_region() {
    let config = PetConfig::builder()
        .accuracy(Accuracy::new(0.2, 0.2).unwrap())
        .zero_probe(true)
        .build()
        .unwrap();
    let pop = TagPopulation::new();
    let deployment = Deployment::new(&pop, ZoneField::clustered(0, 2), vec![vec![0], vec![1]]);
    let mut rng = StdRng::seed_from_u64(5);
    let report = deployment.estimate(&config, 16, ChannelModel::Perfect, &mut rng);
    assert_eq!(report.estimate, 0.0);
    assert_eq!(report.controller_slots, 1, "one probe slot");
}
