//! Bit-for-bit equivalence of the batched estimation kernel
//! (`pet_core::kernel` via [`SessionEngine::run_fast`]) against the
//! slot-by-slot reference reader, over BOTH oracle implementations —
//! the sorted-array [`CodeRoster`] and the per-tag [`TagFleet`] — for the
//! same `(path, seed)` RNG stream.
//!
//! This is the acceptance gate for the kernel: estimates, per-round
//! records, and air metrics must be *identical*, not statistically close,
//! across all tree heights 1..=64 and populations from empty to 10⁵.

use pet_core::config::{PetConfig, SearchStrategy, TagMode};
use pet_core::oracle::{CodeRoster, ResponderOracle, TagFleet};
use pet_core::session::{EstimateReport, PetSession, SessionEngine};
use pet_phy::channel::PerfectChannel;
use pet_phy::Air;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn report_over<O: ResponderOracle>(
    session: &PetSession,
    oracle: &mut O,
    rounds: u32,
    seed: u64,
) -> EstimateReport {
    let mut air = Air::new(PerfectChannel);
    let mut rng = StdRng::seed_from_u64(seed);
    session.run_rounds(rounds, oracle, &mut air, &mut rng)
}

fn assert_identical(slow: &EstimateReport, fast: &EstimateReport, label: &str) {
    assert_eq!(
        slow.estimate.to_bits(),
        fast.estimate.to_bits(),
        "{label}: estimate"
    );
    assert_eq!(
        slow.mean_prefix_len.to_bits(),
        fast.mean_prefix_len.to_bits(),
        "{label}: mean prefix len"
    );
    assert_eq!(slow.records, fast.records, "{label}: records");
    assert_eq!(slow.metrics, fast.metrics, "{label}: metrics");
    assert_eq!(slow.rounds, fast.rounds, "{label}: rounds");
    assert_eq!(slow.zero_detected, fast.zero_detected, "{label}: zero flag");
}

/// Runs the three paths (kernel, roster reader, fleet reader) on the same
/// stream and demands byte-identical reports.
fn check(config: PetConfig, keys: &[u64], rounds: u32, seed: u64, label: &str) {
    let session = PetSession::new(config);
    let engine = SessionEngine::from_session(session.clone());
    let mut roster = CodeRoster::new(keys, &config, session.family());
    let mut fleet = TagFleet::new(keys, &config, session.family());
    let via_roster = report_over(&session, &mut roster, rounds, seed);
    let via_fleet = report_over(&session, &mut fleet, rounds, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let fast = engine.estimate_keys_rounds(keys, rounds, &mut rng);
    assert_identical(&via_roster, &fast, &format!("{label} (roster)"));
    assert_identical(&via_fleet, &fast, &format!("{label} (fleet)"));
}

/// Every tree height, both search strategies, mixed-key roster.
#[test]
fn kernel_matches_both_oracles_at_every_height() {
    let keys: Vec<u64> = (0..37u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    for height in 1..=64u32 {
        for search in [SearchStrategy::Binary, SearchStrategy::Linear] {
            let config = PetConfig::builder()
                .height(height)
                .search(search)
                .build()
                .unwrap();
            check(
                config,
                &keys,
                3,
                u64::from(height),
                &format!("H = {height}, {search:?}"),
            );
        }
    }
}

/// Population scales from empty to 10⁵ at the paper's height.
#[test]
fn kernel_matches_both_oracles_across_population_scales() {
    for (n, rounds) in [(0usize, 8u32), (1, 8), (1_000, 8), (100_000, 3)] {
        let keys: Vec<u64> = (0..n as u64).collect();
        let config = PetConfig::paper_default();
        check(
            config,
            &keys,
            rounds,
            0xE0_0000 + n as u64,
            &format!("n = {n}"),
        );
    }
}

/// Active per-round mode draws one extra seed per round; the kernel must
/// consume the stream identically and rebuild the same codes.
#[test]
fn kernel_matches_both_oracles_in_active_mode() {
    for height in [8u32, 32] {
        let keys: Vec<u64> = (0..800).collect();
        let config = PetConfig::builder()
            .height(height)
            .tag_mode(TagMode::ActivePerRound)
            .build()
            .unwrap();
        check(
            config,
            &keys,
            6,
            0xAC71_0000 + u64::from(height),
            &format!("active H = {height}"),
        );
    }
}

/// Zero-probe short-circuit is identical, both on empty and non-empty
/// populations.
#[test]
fn kernel_matches_zero_probe_paths() {
    for n in [0usize, 500] {
        let keys: Vec<u64> = (0..n as u64).collect();
        let config = PetConfig::builder().zero_probe(true).build().unwrap();
        check(
            config,
            &keys,
            5,
            0x2E80 + n as u64,
            &format!("probe n = {n}"),
        );
    }
}
