//! PHY-conformance suite: the Gen2 pricing layer must be a *pure
//! observer* of the protocol — attaching a [`PhyProfile`] to a config can
//! never change what the protocol does, only price what it did.
//!
//! Three pins:
//!
//! 1. **Pricing-purity differential** (property): for any population,
//!    round budget, and seed, running with and without the profile yields
//!    bit-identical estimates, round records, and air metrics — on both
//!    the Oracle and Kernel backends — and the attached ledger is exactly
//!    the profile folded over those metrics.
//! 2. **Golden PHY trace**: a fixed-seed run pins the slot breakdown and
//!    every ledger component byte for byte in
//!    `tests/golden/phy_trace.csv`. Re-bless after an intentional timing
//!    or energy model change with `PET_BLESS=1 cargo test -p pet --test
//!    phy_conformance`.
//! 3. **Trimmed-mean skew caveat** (gate): the trimmed-mean mitigation
//!    cannot repair Tash-style hash skew. Trimming removes symmetric
//!    outlier rounds; a biased `P(1)` shifts *every* round's statistic
//!    the same way, so the bias survives the trim. The test fails if
//!    someone "fixes" this accidentally, so the documented caveat in
//!    DESIGN.md stays true to the code.

use pet::prelude::*;
use pet_core::config::Mitigation;
use pet_hash::family::AnyFamily;
use proptest::prelude::*;
use std::fmt::Write as _;
use std::path::Path;

fn config(backend: Backend, phy: Option<PhyProfile>) -> PetConfig {
    PetConfig::builder()
        .accuracy(Accuracy::new(0.2, 0.2).unwrap())
        .backend(backend)
        .phy(phy)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pin 1: PHY accounting never changes estimate bits, round records,
    /// or slot counts, and the ledger is the pure fold over the metrics.
    #[test]
    fn phy_pricing_never_changes_protocol_bits(
        n in 1usize..2_000,
        rounds in 1u32..48,
        seed in any::<u64>(),
    ) {
        let keys: Vec<u64> = TagPopulation::sequential(n).keys().collect();
        let profile = PhyProfile::gen2();
        let mut reports = Vec::new();
        for backend in [Backend::Oracle, Backend::Kernel] {
            let mut rng = StdRng::seed_from_u64(seed);
            let off = Estimator::new(config(backend, None))
                .try_estimate_keys_rounds(&keys, rounds, &mut rng)
                .unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let on = Estimator::new(config(backend, Some(profile)))
                .try_estimate_keys_rounds(&keys, rounds, &mut rng)
                .unwrap();
            prop_assert_eq!(
                on.estimate.to_bits(),
                off.estimate.to_bits(),
                "estimate drifted under pricing ({:?} backend)",
                backend
            );
            prop_assert_eq!(on.rounds, off.rounds);
            prop_assert_eq!(on.mean_prefix_len.to_bits(), off.mean_prefix_len.to_bits());
            prop_assert_eq!(&on.records, &off.records);
            prop_assert_eq!(on.metrics, off.metrics);
            prop_assert_eq!(off.phy, None, "no profile, no ledger");
            prop_assert_eq!(
                on.phy,
                Some(profile.report(&on.metrics)),
                "ledger must be the pure fold over the final metrics"
            );
            reports.push(on);
        }
        // Backend equivalence extends to the priced ledger.
        prop_assert_eq!(reports[0].phy, reports[1].phy);
    }
}

/// The fixed scenario behind the golden trace: 800 tags, 48 rounds, both
/// backends (which must agree bit for bit, so the trace pins one line per
/// backend with identical numbers past the label).
fn phy_trace() -> String {
    let keys: Vec<u64> = TagPopulation::sequential(800).keys().collect();
    let profile = PhyProfile::gen2();
    let mut out = String::from(
        "backend,estimate,slots,idle,singleton,collision,command_bits,tag_responses,\
         wall_ms,reader_tx_uj,reader_rx_uj,tag_uj,energy_uj\n",
    );
    for backend in [Backend::Oracle, Backend::Kernel] {
        let mut rng = StdRng::seed_from_u64(0x6E2_2026);
        let report = Estimator::new(config(backend, Some(profile)))
            .try_estimate_keys_rounds(&keys, 48, &mut rng)
            .unwrap();
        let m = report.metrics;
        let p = report.phy.expect("profile configured");
        // `{:?}` prints the shortest f64 representation that round-trips,
        // so equal bytes ⇔ equal bits.
        writeln!(
            out,
            "{backend:?},{:?},{},{},{},{},{},{},{:?},{:?},{:?},{:?},{:?}",
            report.estimate,
            m.slots,
            m.idle,
            m.singleton,
            m.collision,
            m.command_bits,
            m.tag_responses,
            p.wall_ms,
            p.reader_tx_uj,
            p.reader_rx_uj,
            p.tag_uj,
            p.energy_uj
        )
        .unwrap();
    }
    out
}

/// Pin 2: the golden PHY trace. Every slot count and ledger component is
/// pinned byte for byte; `PET_BLESS=1` re-blesses.
#[test]
fn golden_phy_trace_matches() {
    let produced = phy_trace();

    // Structural check first, independent of the golden bytes: both
    // backends must print identical numbers after the backend label.
    let lines: Vec<&str> = produced.lines().skip(1).collect();
    assert_eq!(lines.len(), 2);
    let strip = |l: &str| l.split_once(',').unwrap().1.to_string();
    assert_eq!(
        strip(lines[0]),
        strip(lines[1]),
        "oracle and kernel priced transcripts diverged"
    );

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/phy_trace.csv");
    if std::env::var("PET_BLESS").is_ok_and(|v| !v.is_empty()) {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &produced).unwrap();
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden missing — run once with PET_BLESS=1 to create it, then commit the file");
    assert_eq!(
        produced, golden,
        "PHY trace drifted from tests/golden/phy_trace.csv; if the timing or \
         energy model change is intentional, re-bless with PET_BLESS=1 and commit"
    );
}

/// Pin 2b: producing the trace twice from scratch gives identical bytes —
/// the property the server's priced replies and the sweep's ledger rows
/// stand on.
#[test]
fn phy_trace_replays_bit_for_bit() {
    assert_eq!(phy_trace(), phy_trace());
}

/// Pin 3: the trimmed-mean mitigation does not repair Tash hash skew.
/// Skew shifts every round's prefix statistic systematically; the trim
/// only discards extreme rounds, so the biased mean survives. DESIGN.md
/// documents this caveat — this test keeps it true.
#[test]
fn trimmed_mean_does_not_repair_tash_skew() {
    let n = 5_000usize;
    let keys: Vec<u64> = TagPopulation::sequential(n).keys().collect();
    let rounds = 400u32;
    let rel_err = |mitigation: Mitigation, family: AnyFamily| {
        let config = PetConfig::builder()
            .accuracy(Accuracy::new(0.2, 0.2).unwrap())
            .mitigation(mitigation)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(0x7A51);
        let report = Estimator::with_family(config, family)
            .try_estimate_keys_rounds(&keys, rounds, &mut rng)
            .unwrap();
        (report.estimate - n as f64) / n as f64
    };
    let skewed = AnyFamily::tash(0.10);
    let biased = rel_err(Mitigation::None, skewed);
    let trimmed = rel_err(Mitigation::TrimmedMean { trim: 40 }, skewed);
    // The skew produces a real, systematic bias...
    assert!(
        biased.abs() > 0.10,
        "a 0.10 per-bit skew must visibly bias the estimate, got {biased:+.3}"
    );
    // ...and trimming 20% of rounds per tail removes at most a sliver of
    // it: the trimmed estimate must retain most of the bias (same sign,
    // comparable magnitude), because the error is in every round.
    assert!(
        trimmed.signum() == biased.signum() && trimmed.abs() > biased.abs() * 0.5,
        "trimmed mean must NOT repair systematic hash skew: \
         biased {biased:+.3} vs trimmed {trimmed:+.3}"
    );
    // Control: with uniform hashing the same trim stays accurate.
    let control = rel_err(Mitigation::TrimmedMean { trim: 40 }, AnyFamily::default());
    assert!(
        control.abs() < 0.10,
        "trimmed mean under uniform hashing must stay accurate, got {control:+.3}"
    );
}
