//! Cross-protocol comparisons — the §5.3 claims, end to end.

use pet::baselines::{
    CardinalityEstimator, Ezb, Fidelity, Fneb, Lof, PetAdapter, UnifiedSimpleEstimator, Upe,
};
use pet::prelude::*;
use pet_sim::run_trials;

/// Every protocol in the workspace estimates the same workload correctly.
#[test]
fn all_protocols_estimate_the_same_world() {
    let n = 8_000usize;
    let keys: Vec<u64> = (0..n as u64).collect();
    let protocols: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(PetAdapter::paper_default()),
        Box::new(Fneb::paper_default()),
        Box::new(Fneb::enhanced(Fidelity::Sampled)),
        Box::new(Lof::paper_default()),
        Box::new(UnifiedSimpleEstimator::with_prior(n as f64)),
        Box::new(Upe::with_prior(n as f64)),
        Box::new(Ezb::paper_default()),
    ];
    for p in &protocols {
        let summary = run_trials(30, 0x0C01 ^ p.name().len() as u64, |trial_seed| {
            let mut rng = StdRng::seed_from_u64(trial_seed);
            let mut air = Air::new(ChannelModel::Perfect);
            p.estimate_rounds(&keys, 80, &mut air, &mut rng).estimate
        });
        let acc = summary.mean / n as f64;
        assert!(
            (acc - 1.0).abs() < 0.08,
            "{}: mean accuracy {acc}",
            p.name()
        );
    }
}

/// Table 4/5, measured end to end at a reduced requirement: every protocol
/// meets its coverage promise at its own budget, and PET's budget is the
/// smallest by a wide margin.
#[test]
fn pet_meets_accuracy_with_fewest_slots() {
    let n = 10_000usize;
    let accuracy = Accuracy::new(0.10, 0.05).unwrap();
    let keys: Vec<u64> = (0..n as u64).collect();
    let protocols: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(PetAdapter::paper_default()),
        Box::new(Fneb::paper_default().with_fidelity(Fidelity::Sampled)),
        Box::new(Lof::paper_default().with_fidelity(Fidelity::Sampled)),
    ];
    let mut budgets = Vec::new();
    for p in &protocols {
        let rounds = p.rounds(&accuracy);
        let summary = run_trials(100, 0x0C02, |trial_seed| {
            let mut rng = StdRng::seed_from_u64(trial_seed);
            let mut air = Air::new(ChannelModel::Perfect);
            p.estimate_rounds(&keys, rounds, &mut air, &mut rng)
                .estimate
        });
        let (lo, hi) = accuracy.interval(n as f64);
        let within = pet_stats::histogram::fraction_within(&summary.values, lo, hi);
        assert!(
            within >= 0.90,
            "{}: coverage {within} at its own budget",
            p.name()
        );
        budgets.push((p.name().to_string(), p.total_slots(&accuracy)));
    }
    let pet = budgets[0].1;
    for (name, slots) in &budgets[1..] {
        let ratio = pet as f64 / *slots as f64;
        assert!(
            ratio < 0.55,
            "PET budget {pet} not clearly below {name}'s {slots} (ratio {ratio})"
        );
    }
}

/// Fig. 6's equal-budget comparison at reduced scale: give all three
/// protocols PET's slot budget; PET's estimates concentrate hardest.
#[test]
fn equal_budget_concentration() {
    let n = 10_000usize;
    let accuracy = Accuracy::new(0.10, 0.05).unwrap();
    let keys: Vec<u64> = (0..n as u64).collect();
    let pet = PetAdapter::paper_default();
    let budget = pet.total_slots(&accuracy);

    let spread = |values: &[f64]| pet_stats::describe::rmse(values, n as f64) / n as f64;

    let pet_vals = run_trials(80, 0x0C03, |trial_seed| {
        let mut rng = StdRng::seed_from_u64(trial_seed);
        let mut air = Air::new(ChannelModel::Perfect);
        pet.estimate_rounds(&keys, pet.rounds(&accuracy), &mut air, &mut rng)
            .estimate
    })
    .values;

    let lof = Lof::paper_default().with_fidelity(Fidelity::Sampled);
    let lof_rounds = (budget / lof.slots_per_round()).max(1) as u32;
    let lof_vals = run_trials(80, 0x0C04, |trial_seed| {
        let mut rng = StdRng::seed_from_u64(trial_seed);
        let mut air = Air::new(ChannelModel::Perfect);
        lof.estimate_rounds(&keys, lof_rounds, &mut air, &mut rng)
            .estimate
    })
    .values;

    let fneb = Fneb::paper_default().with_fidelity(Fidelity::Sampled);
    let fneb_rounds = (budget / fneb.slots_per_round()).max(1) as u32;
    let fneb_vals = run_trials(80, 0x0C05, |trial_seed| {
        let mut rng = StdRng::seed_from_u64(trial_seed);
        let mut air = Air::new(ChannelModel::Perfect);
        fneb.estimate_rounds(&keys, fneb_rounds, &mut air, &mut rng)
            .estimate
    })
    .values;

    let (s_pet, s_lof, s_fneb) = (spread(&pet_vals), spread(&lof_vals), spread(&fneb_vals));
    assert!(
        s_pet < s_lof && s_pet < s_fneb,
        "PET spread {s_pet} vs LoF {s_lof} vs FNEB {s_fneb}"
    );
}

/// Identical slot accounting across fidelities (the sampled fast path must
/// not cheat on costs).
#[test]
fn fidelities_agree_on_costs() {
    let keys: Vec<u64> = (0..3_000).collect();
    let fneb_a = Fneb::paper_default();
    let fneb_b = Fneb::paper_default().with_fidelity(Fidelity::Sampled);
    let run = |p: &Fneb, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut air = Air::new(ChannelModel::Perfect);
        p.estimate_rounds(&keys, 25, &mut air, &mut rng).metrics
    };
    assert_eq!(run(&fneb_a, 1).slots, run(&fneb_b, 2).slots);
    let lof_a = Lof::paper_default();
    let lof_b = Lof::paper_default().with_fidelity(Fidelity::Sampled);
    let run = |p: &Lof, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut air = Air::new(ChannelModel::Perfect);
        p.estimate_rounds(&keys, 25, &mut air, &mut rng).metrics
    };
    assert_eq!(run(&lof_a, 1).slots, run(&lof_b, 2).slots);
}
