//! Golden protocol traces: exact slot-by-slot transcripts for fixed seeds.
//!
//! These pin the protocol's observable behaviour — any change to path
//! drawing, search order, command sizing, or slot accounting shows up here
//! as a diff, deliberately. (If you *meant* to change the protocol, update
//! the goldens and say so in the changelog.)

use pet::prelude::*;
use pet_core::bits::BitString;
use pet_core::kernel::CodeBank;
use pet_core::oracle::{CodeRoster, ResponderOracle, RoundStart};
use pet_core::reader::{binary_round, linear_round};
use pet_phy::channel::{LossyChannel, PerfectChannel};
use pet_phy::{Air, SlotOutcome};
use std::sync::Arc;

fn fig3_roster() -> CodeRoster {
    let codes: Vec<BitString> = [
        "000000", "001000", "001100", "001110", "010000", "010101", "011011", "011111", "100000",
        "100111", "101010", "101101", "110011", "110110", "111001", "111100",
    ]
    .iter()
    .map(|s| BitString::from_bits(u64::from_str_radix(s, 2).unwrap(), 6).unwrap())
    .collect();
    CodeRoster::from_codes(&codes, 6)
}

fn outcomes(air: &Air<PerfectChannel>) -> Vec<(u64, SlotOutcome)> {
    air.transcript()
        .expect("transcript enabled")
        .records()
        .iter()
        .map(|r| (r.responders, r.outcome))
        .collect()
}

/// The paper's Fig. 3a trace, bit for bit.
#[test]
fn golden_fig3a_linear() {
    let config = pet_core::config::PetConfig::builder()
        .height(6)
        .search(pet_core::config::SearchStrategy::Linear)
        .build()
        .unwrap();
    let mut roster = fig3_roster();
    let path = BitString::from_bits(0b000011, 6).unwrap();
    roster.begin_round(&RoundStart { path, seed: None });
    let mut air = Air::new(PerfectChannel).with_transcript(64);
    let mut rng = StdRng::seed_from_u64(0);
    let rec = linear_round(&config, &mut roster, &mut air, &mut rng);
    assert_eq!(rec.slots, 5);
    assert_eq!(
        outcomes(&air),
        vec![
            (8, SlotOutcome::Collision),
            (4, SlotOutcome::Collision),
            (1, SlotOutcome::Singleton),
            (1, SlotOutcome::Singleton),
            (0, SlotOutcome::Idle),
        ]
    );
}

/// The paper's Fig. 3b trace, bit for bit.
#[test]
fn golden_fig3b_binary() {
    let config = pet_core::config::PetConfig::builder()
        .height(6)
        .build()
        .unwrap();
    let mut roster = fig3_roster();
    let path = BitString::from_bits(0b000011, 6).unwrap();
    roster.begin_round(&RoundStart { path, seed: None });
    let mut air = Air::new(PerfectChannel).with_transcript(64);
    let mut rng = StdRng::seed_from_u64(0);
    let rec = binary_round(&config, &mut roster, &mut air, &mut rng);
    assert_eq!(rec.slots, 2);
    assert_eq!(
        outcomes(&air),
        vec![(1, SlotOutcome::Singleton), (0, SlotOutcome::Idle)]
    );
}

/// A fixed-seed paper-default session: the statistic, slot count, and
/// command bits must never drift.
#[test]
fn golden_default_session() {
    let config = PetConfig::builder()
        .accuracy(Accuracy::new(0.2, 0.2).unwrap())
        .manufacture_seed(0x601D)
        .build()
        .unwrap();
    let pop = TagPopulation::sequential(1_000);
    let mut rng = StdRng::seed_from_u64(0x601D);
    let report = PetSession::new(config).estimate_population_rounds(&pop, 64, &mut rng);
    // Golden values recorded at protocol freeze; see module docs.
    assert_eq!(report.metrics.slots, 320);
    assert_eq!(report.metrics.command_bits, 64 * 32 + 320 * 5);
    let golden_mean_prefix = report.mean_prefix_len;
    // Re-running with the same seeds reproduces the statistic exactly.
    let mut rng = StdRng::seed_from_u64(0x601D);
    let again = PetSession::new(config).estimate_population_rounds(&pop, 64, &mut rng);
    assert_eq!(again.mean_prefix_len, golden_mean_prefix);
    assert_eq!(again.estimate, report.estimate);
    // And the estimate is sane.
    assert!((report.estimate - 1_000.0).abs() / 1_000.0 < 0.35);
}

/// Fixed-seed lossy golden: the exact slot-by-slot outcome sequence of three
/// binary-search rounds over the Fig. 3 population through a
/// `LossyChannel(0.25, 0.05)`, including both fault classes — a dropped
/// response (1 responder read as Idle, round 2) and a phantom-busy slot
/// (0 responders read as Singleton, round 1). The kernel's slot-accurate
/// path must replay the identical transcript from the same seed.
#[test]
fn golden_lossy_trace() {
    const SEED: u64 = 0;
    let channel = LossyChannel::new(0.25, 0.05).unwrap();
    let config = pet_core::config::PetConfig::builder()
        .height(6)
        .channel(ChannelModel::Lossy(channel))
        .build()
        .unwrap();
    let mut roster = fig3_roster();
    let mut air = Air::new(channel).with_transcript(64);
    let mut rng = StdRng::seed_from_u64(SEED);
    let recs: Vec<_> = (0..3)
        .map(|_| pet_core::reader::run_round(&config, &mut roster, &mut air, &mut rng))
        .collect();
    // Golden statistics: the phantom singleton in round 1 keeps its descent
    // alive one level deeper; the dropped response in round 2 cuts it short.
    assert_eq!(
        recs.iter().map(|r| r.prefix_len).collect::<Vec<_>>(),
        vec![5, 4, 5]
    );
    assert_eq!(
        recs.iter().map(|r| r.slots).collect::<Vec<_>>(),
        vec![3, 2, 3]
    );
    let golden = vec![
        (1, SlotOutcome::Singleton),
        (0, SlotOutcome::Singleton), // phantom busy: noise floor on an idle slot
        (0, SlotOutcome::Idle),
        (1, SlotOutcome::Singleton),
        (1, SlotOutcome::Idle), // dropped response: the lone responder is missed
        (1, SlotOutcome::Singleton),
        (1, SlotOutcome::Singleton),
        (0, SlotOutcome::Idle),
    ];
    assert_eq!(
        air.transcript()
            .expect("transcript enabled")
            .records()
            .iter()
            .map(|r| (r.responders, r.outcome))
            .collect::<Vec<_>>(),
        golden
    );

    // The kernel backend replays the same trace bit for bit from the same
    // codes and seed.
    let codes: Arc<Vec<u64>> = Arc::new(fig3_roster().codes().to_vec());
    let kernel_config = pet_core::config::PetConfig::builder()
        .height(6)
        .backend(Backend::Kernel)
        .channel(ChannelModel::Lossy(channel))
        .build()
        .unwrap();
    let mut bank = CodeBank::passive_shared(codes);
    let mut rng = StdRng::seed_from_u64(SEED);
    let (report, transcript) = pet_core::front::Estimator::new(kernel_config)
        .try_run_bank_transcribed(&mut bank, 3, 64, &mut rng)
        .expect("kernel run succeeds");
    assert_eq!(
        report
            .records
            .iter()
            .map(|r| r.prefix_len)
            .collect::<Vec<_>>(),
        vec![5, 4, 5]
    );
    assert_eq!(
        transcript
            .records()
            .iter()
            .map(|r| (r.responders, r.outcome))
            .collect::<Vec<_>>(),
        golden
    );
}

/// Fixed-seed multi-round transcript: the exact query-slot outcome sequence
/// of the first two default-config rounds over the Fig. 3 population.
#[test]
fn golden_two_round_transcript() {
    let config = pet_core::config::PetConfig::builder()
        .height(6)
        .build()
        .unwrap();
    let mut roster = fig3_roster();
    let mut air = Air::new(PerfectChannel).with_transcript(64);
    let mut rng = StdRng::seed_from_u64(42);
    let r1 = pet_core::reader::run_round(&config, &mut roster, &mut air, &mut rng);
    let r2 = pet_core::reader::run_round(&config, &mut roster, &mut air, &mut rng);
    // The statistics are deterministic under seed 42.
    assert_eq!((r1.prefix_len, r2.prefix_len), (4, 5));
    let total_slots = u64::from(r1.slots + r2.slots);
    assert_eq!(air.metrics().slots, total_slots);
    assert!(air.metrics().is_consistent());
}
