//! Adversarial and pathological workloads: the cases a protocol survives in
//! a paper appendix but must *demonstrate* in a library.

use pet::prelude::*;
use pet_core::bits::BitString;
use pet_core::config::SearchStrategy;
use pet_core::oracle::{CodeRoster, ResponderOracle, RoundStart};
use pet_core::reader::binary_round;
use pet_hash::family::AnyFamily;
use pet_phy::channel::{LossyChannel, PerfectChannel};
use pet_sim::run_trials;

fn quick_config() -> PetConfig {
    PetConfig::builder()
        .accuracy(Accuracy::new(0.2, 0.2).unwrap())
        .build()
        .unwrap()
}

/// Cloned tags (duplicate keys → identical codes) are counted once: PET
/// estimates *distinct* codes, so cloning cannot inflate a count — the
/// flip side of §4.6.3's duplicate insensitivity.
#[test]
fn cloned_tags_count_once() {
    let distinct = 4_000u64;
    let mut keys: Vec<u64> = (0..distinct).collect();
    // Every tag cloned three times.
    keys.extend(0..distinct);
    keys.extend(0..distinct);
    let config = quick_config();
    let summary = run_trials(40, 0x0AD1, |trial_seed| {
        let config = PetConfig::builder()
            .accuracy(Accuracy::new(0.2, 0.2).unwrap())
            .manufacture_seed(trial_seed)
            .build()
            .unwrap();
        let mut oracle = CodeRoster::new(&keys, &config, AnyFamily::default());
        let mut air = Air::new(ChannelModel::Perfect);
        let mut rng = StdRng::seed_from_u64(trial_seed);
        PetSession::new(config)
            .run_rounds(256, &mut oracle, &mut air, &mut rng)
            .estimate
    });
    let _ = config;
    let acc = summary.mean / distinct as f64;
    assert!(
        (acc - 1.0).abs() < 0.1,
        "cloned population estimated {} vs distinct {distinct}",
        summary.mean
    );
}

/// Estimates are invariant to the key space's *structure*: sequential keys,
/// random keys, and keys differing only in high bits give the same law.
#[test]
fn key_structure_invariance() {
    let n = 3_000usize;
    let spaces: Vec<Vec<u64>> = vec![
        (0..n as u64).collect(),
        (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect(),
        (0..n as u64).map(|i| i << 40).collect(),
    ];
    let mut means = Vec::new();
    for (si, keys) in spaces.iter().enumerate() {
        let summary = run_trials(40, 0x0AD2 ^ si as u64, |trial_seed| {
            let config = PetConfig::builder()
                .accuracy(Accuracy::new(0.2, 0.2).unwrap())
                .manufacture_seed(trial_seed)
                .build()
                .unwrap();
            let mut oracle = CodeRoster::new(keys, &config, AnyFamily::default());
            let mut air = Air::new(ChannelModel::Perfect);
            let mut rng = StdRng::seed_from_u64(trial_seed);
            PetSession::new(config)
                .run_rounds(128, &mut oracle, &mut air, &mut rng)
                .estimate
        });
        means.push(summary.mean / n as f64);
    }
    for (si, m) in means.iter().enumerate() {
        assert!((m - 1.0).abs() < 0.08, "space {si}: accuracy {m}");
    }
}

/// Near tree saturation (n approaching 2^H) the estimator loses its
/// unbiasedness — the coupon-collector regime the paper's §4.2 excludes by
/// choosing H large. Quantify it instead of pretending it away: at 80%
/// occupancy of an H = 10 tree the estimate must still be within 2×, while
/// at 1% occupancy it is within the normal band.
#[test]
fn saturation_bias_is_bounded_not_hidden() {
    for (n, tolerance) in [(10usize, 0.35), (800, 1.0)] {
        let summary = run_trials(60, 0x0AD3, |trial_seed| {
            let config = PetConfig::builder()
                .height(10)
                .accuracy(Accuracy::new(0.2, 0.2).unwrap())
                .manufacture_seed(trial_seed)
                .build()
                .unwrap();
            let keys: Vec<u64> = (0..n as u64).collect();
            let mut oracle = CodeRoster::new(&keys, &config, AnyFamily::default());
            let mut air = Air::new(ChannelModel::Perfect);
            let mut rng = StdRng::seed_from_u64(trial_seed);
            PetSession::new(config)
                .run_rounds(512, &mut oracle, &mut air, &mut rng)
                .estimate
        });
        let acc = summary.mean / n as f64;
        assert!(
            (acc - 1.0).abs() < tolerance,
            "n = {n} at H = 10: accuracy {acc} (tolerance {tolerance})"
        );
    }
}

/// The feedback-encoded tag state machines stay synchronized with the
/// reader even when the channel is lossy: both sides key off the broadcast
/// busy/idle bit, so an erased response desynchronizes *nothing* (it only
/// perturbs the statistic).
#[test]
fn feedback_tags_survive_lossy_channels() {
    use pet_core::oracle::TagFleet;
    let config = PetConfig::builder()
        .height(16)
        .encoding(CommandEncoding::FeedbackBit)
        .build()
        .unwrap();
    let keys: Vec<u64> = (0..500).collect();
    let mut fleet = TagFleet::new(&keys, &config, AnyFamily::default());
    let mut air = Air::new(LossyChannel::new(0.3, 0.05).unwrap());
    let mut rng = StdRng::seed_from_u64(0x0AD4);
    // 200 full rounds; the fleet debug-asserts reader/tag mid agreement on
    // every query, so survival of this loop *is* the test.
    for round in 0..200u64 {
        let path = BitString::random(16, &mut StdRng::seed_from_u64(round));
        fleet.begin_round(&RoundStart { path, seed: None });
        let rec = binary_round(&config, &mut fleet, &mut air, &mut rng);
        assert!(rec.prefix_len <= 16);
    }
}

/// A population of exactly one tag: every strategy, every encoding, the
/// estimate lands in [φ⁻¹, a few] — never zero, never wild.
#[test]
fn single_tag_is_estimated_sanely() {
    for strategy in [SearchStrategy::Linear, SearchStrategy::Binary] {
        let summary = run_trials(100, 0x0AD5, |trial_seed| {
            let config = PetConfig::builder()
                .search(strategy)
                .accuracy(Accuracy::new(0.2, 0.2).unwrap())
                .manufacture_seed(trial_seed)
                .build()
                .unwrap();
            let keys = [42u64];
            let mut oracle = CodeRoster::new(&keys, &config, AnyFamily::default());
            let mut air = Air::new(PerfectChannel);
            let mut rng = StdRng::seed_from_u64(trial_seed);
            PetSession::new(config)
                .run_rounds(64, &mut oracle, &mut air, &mut rng)
                .estimate
        });
        assert!(
            summary.mean > 0.5 && summary.mean < 2.5,
            "{strategy:?}: single-tag mean estimate {}",
            summary.mean
        );
        assert!(summary.min > 0.0);
    }
}

/// Phantom energy (false-busy slots) biases the estimate *up* — the dual of
/// the miss-loss ablation — and stays bounded at realistic noise floors.
#[test]
fn false_busy_biases_up_boundedly() {
    let n = 5_000usize;
    let run = |false_busy: f64| {
        let summary = run_trials(40, 0x0AD6, |trial_seed| {
            let config = PetConfig::builder()
                .accuracy(Accuracy::new(0.2, 0.2).unwrap())
                .manufacture_seed(trial_seed)
                .build()
                .unwrap();
            let keys: Vec<u64> = (0..n as u64).collect();
            let mut oracle = CodeRoster::new(&keys, &config, AnyFamily::default());
            let channel = if false_busy == 0.0 {
                ChannelModel::Perfect
            } else {
                ChannelModel::Lossy(LossyChannel::new(0.0, false_busy).unwrap())
            };
            let mut air = Air::new(channel);
            let mut rng = StdRng::seed_from_u64(trial_seed);
            PetSession::new(config)
                .run_rounds(256, &mut oracle, &mut air, &mut rng)
                .estimate
        });
        summary.mean / n as f64
    };
    let clean = run(0.0);
    let noisy = run(0.05);
    assert!(
        noisy > clean,
        "phantom busy must bias up: {noisy} vs {clean}"
    );
    assert!(
        noisy < 2.0,
        "5% phantom-busy inflation out of control: {noisy}"
    );
}

/// Back-to-back sessions on the same roster are independent trials: the
/// second estimate is not contaminated by the first (no leftover state).
#[test]
fn sessions_do_not_leak_state() {
    let config = quick_config();
    let keys: Vec<u64> = (0..2_000).collect();
    let mut oracle = CodeRoster::new(&keys, &config, AnyFamily::default());
    let session = PetSession::new(config);
    let mut air = Air::new(PerfectChannel);
    let mut rng = StdRng::seed_from_u64(0x0AD7);
    let first = session.run_rounds(128, &mut oracle, &mut air, &mut rng);
    let slots_after_first = air.metrics().slots;
    let second = session.run_rounds(128, &mut oracle, &mut air, &mut rng);
    assert_eq!(air.metrics().slots, slots_after_first * 2);
    for report in [&first, &second] {
        let rel = (report.estimate - 2_000.0).abs() / 2_000.0;
        assert!(rel < 0.3, "estimate {}", report.estimate);
    }
}
