//! The paper's worked examples, reproduced exactly.
//!
//! Fig. 1 (§4.1): H = 4, tags coded 0001/0110/1011/1110, estimating path
//! 0011 → gray node A at height 2, found after the 001* query comes back
//! idle.
//!
//! Fig. 3 (§4.4): H = 6, 16 tags, estimating path 000011 → the basic
//! protocol takes five slots, the binary-search protocol two.

use pet::prelude::*;
use pet_core::bits::BitString;
use pet_core::oracle::{CodeRoster, ResponderOracle, RoundStart};
use pet_core::reader::{binary_round, linear_round};
use pet_core::tree::{NodeColor, Tree};
use pet_phy::channel::PerfectChannel;

fn bits(s: &str) -> BitString {
    let v = u64::from_str_radix(s, 2).expect("binary literal");
    BitString::from_bits(v, s.len() as u32).expect("in range")
}

#[test]
fn fig1_gray_node_at_height_two() {
    let codes = vec![bits("0001"), bits("0110"), bits("1011"), bits("1110")];
    let tree = Tree::build(&codes, 4);
    let path = bits("0011");
    let gray = tree.gray_node(&path).expect("tree is non-empty");
    assert_eq!(gray.height, 2, "node A sits at height 2");
    assert_eq!(gray.prefix_len, 2, "node A's path prefix is 00");
    // The node colors the figure shows: root black, 0 black, 00 black
    // (gray), 001 white, 0011 white.
    assert_eq!(
        tree.colors_along(&path),
        vec![
            NodeColor::Black,
            NodeColor::Black,
            NodeColor::Black,
            NodeColor::White,
            NodeColor::White
        ]
    );
}

#[test]
fn fig1_protocol_trace() {
    // "First the reader requests those tags whose random codes match prefix
    // 0*** … the ones with 0001 and 0110 will respond … the reader then …
    // requests … 00** … the tag with 0001 responds … when the reader
    // queries 001*, … no response is made."
    let codes = vec![bits("0001"), bits("0110"), bits("1011"), bits("1110")];
    let mut roster = CodeRoster::from_codes(&codes, 4);
    let path = bits("0011");
    roster.begin_round(&RoundStart { path, seed: None });
    assert_eq!(roster.responders(1), 2, "0***: two tags respond");
    assert_eq!(roster.responders(2), 1, "00**: one tag responds");
    assert_eq!(roster.responders(3), 0, "001*: idle slot");
}

/// The 16-tag Fig. 3 population: 8 codes under prefix 0 (four under 00,
/// exactly one under 0000, none under 00001), 8 under prefix 1.
fn fig3_codes() -> Vec<BitString> {
    [
        "000000", // the lone tag under 0000 (and not under 00001)
        "001000", "001100", "001110", // the rest of the 00 group
        "010000", "010101", "011011", "011111", // the 01 group
        "100000", "100111", "101010", "101101", // the 1 group
        "110011", "110110", "111001", "111100",
    ]
    .iter()
    .map(|s| bits(s))
    .collect()
}

#[test]
fn fig3a_basic_protocol_takes_five_slots() {
    let config = pet_core::config::PetConfig::builder()
        .height(6)
        .search(pet_core::config::SearchStrategy::Linear)
        .build()
        .unwrap();
    let mut roster = CodeRoster::from_codes(&fig3_codes(), 6);
    let path = bits("000011");
    roster.begin_round(&RoundStart { path, seed: None });
    let mut air = pet_phy::Air::new(PerfectChannel).with_transcript(16);
    let mut rng = StdRng::seed_from_u64(0);
    let record = linear_round(&config, &mut roster, &mut air, &mut rng);
    assert_eq!(
        record.slots, 5,
        "the entire process contains five time slots"
    );
    assert_eq!(record.prefix_len, 4, "longest responsive prefix is 0000");
    assert_eq!(record.gray_height, 2);
    // Slot-by-slot responder counts from the figure: 8, 4, 1, 1, 0.
    let responders: Vec<u64> = air
        .transcript()
        .unwrap()
        .records()
        .iter()
        .map(|r| r.responders)
        .collect();
    assert_eq!(responders, vec![8, 4, 1, 1, 0]);
}

#[test]
fn fig3b_binary_search_takes_two_slots() {
    let config = pet_core::config::PetConfig::builder()
        .height(6)
        .build()
        .unwrap();
    let mut roster = CodeRoster::from_codes(&fig3_codes(), 6);
    let path = bits("000011");
    roster.begin_round(&RoundStart { path, seed: None });
    let mut air = pet_phy::Air::new(PerfectChannel).with_transcript(16);
    let mut rng = StdRng::seed_from_u64(0);
    let record = binary_round(&config, &mut roster, &mut air, &mut rng);
    assert_eq!(
        record.slots, 2,
        "the entire process contains only two time slots"
    );
    assert_eq!(record.prefix_len, 4);
    assert_eq!(record.gray_height, 2);
    // Slot 0: mid = ⌈(1+6)/2⌉ = 4, prefix 0000** → one tag responds.
    // Slot 1: mid = ⌈(4+6)/2⌉ = 5, prefix 00001* → idle.
    let records = air.transcript().unwrap().records();
    assert_eq!(records[0].responders, 1);
    assert_eq!(records[1].responders, 0);
}

/// §3's accuracy-definition example: 50,000 tags at ε = 5%, δ = 1% must be
/// reported within [47,500, 52,500] with ≥99% probability — checked here as
/// the interval arithmetic, with the statistical validation living in the
/// bench harness (its 300-run validation is too slow for a unit test at the
/// paper's full budget).
#[test]
fn section3_interval_example() {
    let acc = Accuracy::new(0.05, 0.01).unwrap();
    assert_eq!(acc.interval(50_000.0), (47_500.0, 52_500.0));
}

/// Table 3's row values: m rounds cost exactly 5m slots at H = 32.
#[test]
fn table3_slot_arithmetic() {
    let rows = pet_sim::experiments::table3::run(&pet_sim::experiments::table3::Table3Params {
        n: 50_000,
        round_counts: vec![16, 32, 64, 128, 256, 512],
        seed: 42,
    });
    let measured: Vec<u64> = rows.iter().map(|r| r.measured_slots).collect();
    assert_eq!(measured, vec![80, 160, 320, 640, 1_280, 2_560]);
}
