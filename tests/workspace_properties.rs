//! Cross-crate property tests: invariants that must hold for arbitrary
//! populations, configurations, and seeds.

use pet::prelude::*;
use pet_core::config::{CommandEncoding, SearchStrategy};
use pet_core::oracle::CodeRoster;
use proptest::prelude::*;

fn arb_accuracy() -> impl Strategy<Value = Accuracy> {
    (0.01f64..0.5, 0.01f64..0.5).prop_map(|(e, d)| Accuracy::new(e, d).expect("in range"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Slot accounting: a binary-search estimation of m rounds uses between
    /// 5m and 6m slots (H = 32), and the metrics stay internally consistent.
    #[test]
    fn slot_accounting_bounds(
        n in 0usize..3_000,
        rounds in 1u32..64,
        seed in any::<u64>(),
    ) {
        let config = PetConfig::builder()
            .accuracy(Accuracy::new(0.2, 0.2).unwrap())
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let report = PetSession::new(config)
            .estimate_population_rounds(&TagPopulation::sequential(n), rounds, &mut rng);
        let m = u64::from(rounds);
        prop_assert!(report.metrics.slots >= 5 * m);
        prop_assert!(report.metrics.slots <= 6 * m);
        prop_assert!(report.metrics.is_consistent());
        prop_assert_eq!(
            report.metrics.command_bits,
            // 32-bit path per round + 5-bit mid per query slot.
            32 * m + 5 * report.metrics.slots
        );
    }

    /// The estimate is scale-free: it only depends on the gray-node
    /// statistics, never on the raw population size in a way that could
    /// overflow or go negative.
    #[test]
    fn estimates_are_finite_and_nonnegative(
        n in 0usize..5_000,
        rounds in 1u32..32,
        seed in any::<u64>(),
    ) {
        let config = PetConfig::builder()
            .accuracy(Accuracy::new(0.2, 0.2).unwrap())
            .manufacture_seed(seed)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let report = PetSession::new(config)
            .estimate_population_rounds(&TagPopulation::sequential(n), rounds, &mut rng);
        prop_assert!(report.estimate.is_finite());
        prop_assert!(report.estimate >= 0.0);
        // H = 32 bounds the estimate by φ⁻¹·2³².
        prop_assert!(report.estimate <= 2f64.powi(32));
    }

    /// Rounds from Eq. (20) are monotone: tightening either ε or δ never
    /// reduces the budget, for PET and for every baseline.
    #[test]
    fn round_budgets_are_monotone(acc in arb_accuracy()) {
        use pet::baselines::{CardinalityEstimator, Fneb, Lof, PetAdapter};
        let tighter_eps = Accuracy::new(acc.epsilon() / 2.0, acc.delta()).unwrap();
        let tighter_delta = Accuracy::new(acc.epsilon(), acc.delta() / 2.0).unwrap();
        let protocols: Vec<Box<dyn CardinalityEstimator>> = vec![
            Box::new(PetAdapter::paper_default()),
            Box::new(Fneb::paper_default()),
            Box::new(Lof::paper_default()),
        ];
        for p in protocols {
            prop_assert!(p.rounds(&tighter_eps) >= p.rounds(&acc), "{} vs eps", p.name());
            prop_assert!(p.rounds(&tighter_delta) >= p.rounds(&acc), "{} vs delta", p.name());
        }
    }

    /// Command encodings never change the measured statistic, only the bits:
    /// the same seed yields the same estimate under all three encodings.
    #[test]
    fn encodings_preserve_estimates(
        n in 1usize..2_000,
        seed in any::<u64>(),
    ) {
        let mut estimates = Vec::new();
        let mut bits = Vec::new();
        for encoding in [
            CommandEncoding::FullMask,
            CommandEncoding::PrefixLength,
            CommandEncoding::FeedbackBit,
        ] {
            let config = PetConfig::builder()
                .accuracy(Accuracy::new(0.2, 0.2).unwrap())
                .encoding(encoding)
                .build()
                .unwrap();
            let session = PetSession::new(config);
            let keys: Vec<u64> = (0..n as u64).collect();
            let mut oracle = CodeRoster::new(&keys, &config, session.family());
            let mut air = Air::new(ChannelModel::Perfect);
            let mut rng = StdRng::seed_from_u64(seed);
            let report = session.run_rounds(16, &mut oracle, &mut air, &mut rng);
            estimates.push(report.estimate);
            bits.push(report.metrics.command_bits);
        }
        prop_assert_eq!(estimates[0], estimates[1]);
        prop_assert_eq!(estimates[1], estimates[2]);
        prop_assert!(bits[0] > bits[1] && bits[1] > bits[2]);
    }

    /// Linear and binary strategies measure the same statistic for the same
    /// seeds (they differ only in slots).
    #[test]
    fn strategies_measure_the_same_statistic(
        n in 1usize..2_000,
        seed in any::<u64>(),
    ) {
        let mut prefixes = Vec::new();
        for strategy in [SearchStrategy::Linear, SearchStrategy::Binary] {
            let config = PetConfig::builder()
                .accuracy(Accuracy::new(0.2, 0.2).unwrap())
                .search(strategy)
                .build()
                .unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let report = PetSession::new(config)
                .estimate_population_rounds(&TagPopulation::sequential(n), 8, &mut rng);
            prefixes.push(report.mean_prefix_len);
        }
        prop_assert_eq!(prefixes[0], prefixes[1]);
    }
}
