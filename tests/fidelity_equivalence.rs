//! Distributional equivalence of the sampled fast paths and the per-tag
//! reference implementations, checked with a two-sample Kolmogorov–Smirnov
//! test rather than by comparing means.

use pet::baselines::{CardinalityEstimator, Fidelity, Fneb, Lof};
use pet::prelude::*;
use pet_stats::ks;

fn sample_estimates(
    estimator: &dyn CardinalityEstimator,
    keys: &[u64],
    rounds: u32,
    trials: usize,
    seed: u64,
) -> Vec<f64> {
    (0..trials)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 * 7919));
            let mut air = Air::new(ChannelModel::Perfect);
            estimator
                .estimate_rounds(keys, rounds, &mut air, &mut rng)
                .estimate
        })
        .collect()
}

/// LoF's binomial-chain sampler draws from the same estimate distribution
/// as hashing every tag.
#[test]
fn lof_sampled_equals_per_tag_distribution() {
    let keys: Vec<u64> = (0..5_000).collect();
    let per_tag = sample_estimates(&Lof::paper_default(), &keys, 16, 200, 1);
    let sampled = sample_estimates(
        &Lof::paper_default().with_fidelity(Fidelity::Sampled),
        &keys,
        16,
        200,
        2,
    );
    let r = ks::two_sample(&per_tag, &sampled);
    assert!(
        r.same_distribution_at(0.01),
        "LoF fidelities differ: D = {}, p = {}",
        r.statistic,
        r.p_value
    );
}

/// FNEB's inverse-transform sampler draws from the same estimate
/// distribution as hashing every tag into the frame.
#[test]
fn fneb_sampled_equals_per_tag_distribution() {
    let keys: Vec<u64> = (0..5_000).collect();
    let fneb = Fneb::new(1 << 16, Fidelity::PerTag);
    let per_tag = sample_estimates(&fneb, &keys, 16, 200, 3);
    let sampled = sample_estimates(
        &fneb.clone().with_fidelity(Fidelity::Sampled),
        &keys,
        16,
        200,
        4,
    );
    let r = ks::two_sample(&per_tag, &sampled);
    assert!(
        r.same_distribution_at(0.01),
        "FNEB fidelities differ: D = {}, p = {}",
        r.statistic,
        r.p_value
    );
}

/// Negative control: the KS machinery does reject when the workloads truly
/// differ (10% more tags shifts the estimate distribution detectably).
#[test]
fn ks_detects_a_real_population_difference() {
    let keys_a: Vec<u64> = (0..5_000).collect();
    let keys_b: Vec<u64> = (0..5_500).collect();
    let lof = Lof::paper_default().with_fidelity(Fidelity::Sampled);
    let a = sample_estimates(&lof, &keys_a, 64, 200, 5);
    let b = sample_estimates(&lof, &keys_b, 64, 200, 6);
    let r = ks::two_sample(&a, &b);
    assert!(
        !r.same_distribution_at(0.05),
        "KS failed to separate 5,000 from 5,500 tags: p = {}",
        r.p_value
    );
}

/// PET's roster oracle is exact (not sampled), so two independent
/// estimate streams from different manufacture seeds must also be
/// KS-indistinguishable — the §4.5 claim that code refresh does not change
/// the estimator's law.
#[test]
fn pet_estimate_law_is_seed_invariant() {
    let n = 5_000usize;
    let collect = |base_seed: u64| -> Vec<f64> {
        (0..200u64)
            .map(|t| {
                let config = PetConfig::builder()
                    .accuracy(Accuracy::new(0.2, 0.2).unwrap())
                    .manufacture_seed(base_seed ^ (t * 131))
                    .build()
                    .unwrap();
                let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(t));
                PetSession::new(config)
                    .estimate_population_rounds(&TagPopulation::sequential(n), 16, &mut rng)
                    .estimate
            })
            .collect()
    };
    let a = collect(0xAAAA);
    let b = collect(0xBBBB);
    let r = ks::two_sample(&a, &b);
    assert!(
        r.same_distribution_at(0.01),
        "PET law depends on the manufacture seed: p = {}",
        r.p_value
    );
}
