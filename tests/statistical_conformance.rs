//! Statistical conformance suite: pins the paper's (ε, δ) guarantee and the
//! gray-node law with fixed seeds, on the perfect channel the paper assumes
//! and under the lossy-channel extension.
//!
//! Four gates:
//!
//! 1. **Coverage** — over repeated independent trials at Accuracy(0.1, 0.1),
//!    the fraction of estimates within ±10% of the truth meets 90% minus a
//!    3σ binomial sampling tolerance (Eq. 20's round budget really buys the
//!    advertised confidence).
//! 2. **Law** — per-round longest-responsive-prefix lengths pass a KS test
//!    against `P(L ≥ l) = 1 − (1 − 2^{−l})ⁿ` (Eq. 5), and the same sample
//!    rejects a 4× wrong population.
//! 3. **Equivalence** — oracle and kernel backends stay bit-for-bit
//!    identical (reports *and* slot transcripts) under fault injection.
//! 4. **Bias** — relative bias stays within calibrated bounds at 0%, 1%,
//!    and 5% slot-miss rates, and re-probe mitigation measurably shrinks it
//!    at 5%.
//!
//! Everything is seeded; the suite is deterministic run-to-run.

use pet_core::config::{Backend, Mitigation, PetConfig, TagMode};
use pet_core::front::Estimator;
use pet_phy::channel::{ChannelModel, LossyChannel};
use pet_stats::accuracy::Accuracy;
use pet_stats::conformance::{epsilon_delta_coverage, ks_prefix_law, relative_bias};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn lossy(miss: f64, false_busy: f64) -> ChannelModel {
    if miss == 0.0 && false_busy == 0.0 {
        ChannelModel::Perfect
    } else {
        ChannelModel::Lossy(LossyChannel::new(miss, false_busy).expect("valid probabilities"))
    }
}

/// Mean estimates over `trials` seeded runs of a kernel-backend estimator.
fn trial_estimates(
    trials: usize,
    base_seed: u64,
    rounds: u32,
    keys: &[u64],
    channel: ChannelModel,
    mitigation: Mitigation,
) -> Vec<f64> {
    (0..trials as u64)
        .map(|t| {
            let config = PetConfig::builder()
                .backend(Backend::Kernel)
                .manufacture_seed(base_seed ^ (t.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
                .channel(channel)
                .mitigation(mitigation)
                .build()
                .expect("valid config");
            let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(t));
            Estimator::new(config)
                .estimate_keys_rounds(keys, rounds, &mut rng)
                .estimate
        })
        .collect()
}

/// Gate 1: the Eq. (20) round budget delivers the advertised (ε, δ).
#[test]
fn coverage_meets_the_paper_guarantee() {
    let accuracy = Accuracy::new(0.1, 0.1).expect("valid accuracy");
    let rounds = accuracy.pet_rounds();
    let n: usize = 2_000;
    let keys: Vec<u64> = (0..n as u64).collect();
    let estimates = trial_estimates(
        300,
        0xC0FE_E51A,
        rounds,
        &keys,
        ChannelModel::Perfect,
        Mitigation::None,
    );
    let check = epsilon_delta_coverage(&estimates, n as f64, accuracy.epsilon(), accuracy.delta());
    assert!(
        check.holds(),
        "coverage {:.3} over {} trials misses {:.3} − {:.3}",
        check.observed,
        check.trials,
        check.required,
        check.tolerance
    );
    // The tolerance is slack for sampling noise, not a loophole: nominal
    // coverage itself must clear the requirement.
    assert!(check.observed >= check.required - check.tolerance);
}

/// Gate 2: per-round prefix lengths follow the gray-node law (Eq. 5).
///
/// Active-per-round tags re-hash fresh codes each round, so rounds are iid
/// samples from the law — exactly what the KS test assumes.
#[test]
fn prefix_lengths_follow_the_gray_law() {
    let n: usize = 2_000;
    let keys: Vec<u64> = (0..n as u64).collect();
    let mut lens: Vec<u32> = Vec::new();
    let mut height = 0;
    for trial in 0..3u64 {
        let config = PetConfig::builder()
            .backend(Backend::Kernel)
            .tag_mode(TagMode::ActivePerRound)
            .manufacture_seed(0x6A11 + trial)
            .build()
            .expect("valid config");
        height = config.height();
        let mut rng = StdRng::seed_from_u64(0x1AB5 + trial);
        let report = Estimator::new(config).estimate_keys_rounds(&keys, 600, &mut rng);
        lens.extend(report.records.iter().map(|r| r.prefix_len));
    }
    assert_eq!(lens.len(), 1_800);
    let ks = ks_prefix_law(&lens, n as u64, height);
    assert!(
        ks.p_value > 0.05,
        "KS rejected the gray law: D = {:.4}, p = {:.4}",
        ks.statistic,
        ks.p_value
    );
    // The same sample must *reject* a population off by 4× — the test has
    // power, it is not vacuously accepting everything.
    let wrong = ks_prefix_law(&lens, 4 * n as u64, height);
    assert!(
        wrong.p_value < 1e-6,
        "KS failed to reject 4× wrong population: p = {}",
        wrong.p_value
    );
}

/// Gate 3: fault injection preserves backend equivalence — reports and slot
/// transcripts are bit-for-bit identical across oracle and kernel, for both
/// tag modes and both mitigations.
#[test]
fn backends_agree_bit_for_bit_under_fault_injection() {
    let keys: Arc<Vec<u64>> = Arc::new((0..700).map(|k: u64| k.wrapping_mul(0x9E37)).collect());
    for tag_mode in [TagMode::PassivePreloaded, TagMode::ActivePerRound] {
        for mitigation in [Mitigation::None, Mitigation::ReProbe { probes: 2 }] {
            let mut reports = Vec::new();
            for backend in [Backend::Oracle, Backend::Kernel] {
                let config = PetConfig::builder()
                    .backend(backend)
                    .tag_mode(tag_mode)
                    .manufacture_seed(0xD1FF)
                    .channel(lossy(0.1, 0.02))
                    .mitigation(mitigation)
                    .build()
                    .expect("valid config");
                let estimator = Estimator::new(config);
                let mut bank = estimator.bank_for_keys(Arc::clone(&keys));
                let mut rng = StdRng::seed_from_u64(0xBEEF);
                reports.push(
                    estimator
                        .try_run_bank_transcribed(&mut bank, 40, 8192, &mut rng)
                        .expect("run succeeds"),
                );
            }
            let (oracle_report, oracle_transcript) = &reports[0];
            let (kernel_report, kernel_transcript) = &reports[1];
            let label = format!("{tag_mode:?}/{mitigation:?}");
            assert_eq!(
                oracle_report.estimate.to_bits(),
                kernel_report.estimate.to_bits(),
                "{label}: estimate"
            );
            assert_eq!(
                oracle_report.records, kernel_report.records,
                "{label}: records"
            );
            assert_eq!(
                oracle_report.metrics, kernel_report.metrics,
                "{label}: metrics"
            );
            assert_eq!(
                oracle_transcript.records(),
                kernel_transcript.records(),
                "{label}: transcript"
            );
            assert!(
                oracle_transcript.records().len() >= 40,
                "{label}: transcript captured the run"
            );
        }
    }
}

/// Gate 4: bias bounds under loss, and the mitigation's measurable effect.
///
/// Bounds are calibrated against the seeded runs (64 trials × 384 rounds,
/// mean-of-n̂ standard error ≈ 0.8%): measured biases are ≈ +0.6% clean,
/// ≈ +0.2% at 1% miss, ≈ −3.4% at 5% miss, and back to ≈ +0.4% at 5% miss
/// with two re-probes.
#[test]
fn bias_stays_bounded_under_loss_and_mitigation_recovers_it() {
    let n: usize = 2_000;
    let keys: Vec<u64> = (0..n as u64).collect();
    let truth = n as f64;
    let trials = 64;
    let rounds = 384;
    let bias_at = |miss: f64, mitigation: Mitigation| {
        let estimates =
            trial_estimates(trials, 0xB1A5, rounds, &keys, lossy(miss, 0.0), mitigation);
        relative_bias(&estimates, truth)
    };

    let clean = bias_at(0.0, Mitigation::None);
    eprintln!("bias: clean {clean:+.4}");
    assert!(clean.abs() < 0.03, "clean-channel bias {clean:+.4}");

    let light = bias_at(0.01, Mitigation::None);
    eprintln!("bias: 1% miss {light:+.4}");
    assert!(light.abs() < 0.04, "1% miss bias {light:+.4}");

    let heavy = bias_at(0.05, Mitigation::None);
    eprintln!("bias: 5% miss {heavy:+.4}");
    assert!(
        heavy < -0.005 && heavy > -0.15,
        "5% miss bias {heavy:+.4} out of the expected underestimation band"
    );

    let probed = bias_at(0.05, Mitigation::ReProbe { probes: 2 });
    eprintln!("bias: 5% miss re-probed {probed:+.4}");
    assert!(probed.abs() < 0.03, "5% miss re-probed bias {probed:+.4}");
    assert!(
        probed.abs() < heavy.abs(),
        "re-probe must shrink |bias|: {probed:+.4} vs {heavy:+.4}"
    );
}
