//! End-to-end statistical guarantees of the full PET stack.
//!
//! These tests run the whole pipeline — population → hashing → radio →
//! reader → estimator — and check the paper's *quantitative* claims at
//! reduced (but still meaningful) scales.

use pet::prelude::*;
use pet_hash::family::{AnyFamily, HashKind};
use pet_sim::run_trials;

/// The (ε, δ) guarantee: at the scheduled round budget, the fraction of
/// estimates inside [(1−ε)n, (1+ε)n] must be at least 1−δ (with sampling
/// slack for the reduced trial count).
#[test]
fn accuracy_guarantee_holds() {
    let n = 20_000usize;
    let accuracy = Accuracy::new(0.10, 0.05).unwrap();
    let config = PetConfig::builder().accuracy(accuracy).build().unwrap();
    let rounds = config.rounds();
    let trials = 200;
    let summary = run_trials(trials, 0x0E2E_0001, |trial_seed| {
        let config = PetConfig::builder()
            .accuracy(accuracy)
            .manufacture_seed(trial_seed)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(trial_seed);
        PetSession::new(config)
            .estimate_population_rounds(&TagPopulation::sequential(n), rounds, &mut rng)
            .estimate
    });
    let (lo, hi) = accuracy.interval(n as f64);
    let within = pet_stats::histogram::fraction_within(&summary.values, lo, hi);
    // Promise: ≥ 95%. With 200 trials the binomial 3σ slack is ~4.6%.
    assert!(within >= 0.90, "coverage {within} below promise");
    // Unbiasedness of the mean.
    assert!(
        (summary.mean / n as f64 - 1.0).abs() < 0.02,
        "mean accuracy {}",
        summary.mean / n as f64
    );
}

/// The O(log log n) claim, measured: slots per round must not grow with n
/// (and equal ⌈log₂ H⌉ = 5 at H = 32).
#[test]
fn slots_per_round_independent_of_population() {
    for &n in &[100usize, 10_000, 1_000_000] {
        let config = PetConfig::builder()
            .accuracy(Accuracy::new(0.2, 0.2).unwrap())
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let report = PetSession::new(config).estimate_population_rounds(
            &TagPopulation::sequential(n),
            32,
            &mut rng,
        );
        assert_eq!(
            report.metrics.slots, 160,
            "n = {n}: slots {}",
            report.metrics.slots
        );
    }
}

/// Estimates are hash-family agnostic: MD5, SHA-1, and the fast mixer give
/// statistically indistinguishable results (§4.5's "a group of off-the-shelf
/// uniformly distributed hash functions can be used").
#[test]
fn hash_families_are_interchangeable() {
    let n = 5_000usize;
    let mut means = Vec::new();
    for (salt, kind) in [HashKind::Mix, HashKind::Md5, HashKind::Sha1]
        .into_iter()
        .enumerate()
    {
        let summary = run_trials(40, 0x0E2E_0002 ^ salt as u64, |trial_seed| {
            let config = PetConfig::builder()
                .accuracy(Accuracy::new(0.2, 0.2).unwrap())
                .manufacture_seed(trial_seed)
                .build()
                .unwrap();
            let session = PetSession::with_family(config, AnyFamily::new(kind));
            let keys: Vec<u64> = (0..n as u64).collect();
            let mut oracle = pet_core::oracle::CodeRoster::new(&keys, &config, session.family());
            let mut air = Air::new(ChannelModel::Perfect);
            let mut rng = StdRng::seed_from_u64(trial_seed);
            session
                .run_rounds(128, &mut oracle, &mut air, &mut rng)
                .estimate
        });
        means.push(summary.mean / n as f64);
    }
    for m in &means {
        assert!((m - 1.0).abs() < 0.06, "family mean accuracy {m}");
    }
}

/// Active per-round rehash and passive preloaded codes deliver the same
/// accuracy — §4.5's equivalence claim, across the whole stack.
#[test]
fn active_and_passive_modes_equivalent() {
    let n = 5_000usize;
    let mut results = Vec::new();
    for mode in [TagMode::PassivePreloaded, TagMode::ActivePerRound] {
        let summary = run_trials(40, 0x0E2E_0003, |trial_seed| {
            let config = PetConfig::builder()
                .accuracy(Accuracy::new(0.2, 0.2).unwrap())
                .tag_mode(mode)
                .manufacture_seed(trial_seed)
                .build()
                .unwrap();
            let mut rng = StdRng::seed_from_u64(trial_seed);
            PetSession::new(config)
                .estimate_population_rounds(&TagPopulation::sequential(n), 128, &mut rng)
                .estimate
        });
        results.push(summary.mean / n as f64);
    }
    assert!((results[0] - 1.0).abs() < 0.05, "passive {}", results[0]);
    assert!((results[1] - 1.0).abs() < 0.05, "active {}", results[1]);
    assert!((results[0] - results[1]).abs() < 0.05);
}

/// Anonymity invariant: the entire protocol transcript (commands + slot
/// outcomes) never carries a tag ID — estimation works on populations whose
/// EPCs the reader has never seen.
#[test]
fn estimation_never_touches_tag_identity() {
    // Two disjoint EPC spaces of the same size must estimate identically in
    // distribution; and the per-round transcript is just (bits, outcome)
    // pairs — verified by type: AirMetrics has no identity channel.
    let mut rng = StdRng::seed_from_u64(5);
    let a = TagPopulation::sequential(2_000);
    let b = TagPopulation::random(2_000, &mut rng);
    let config = PetConfig::builder()
        .accuracy(Accuracy::new(0.2, 0.2).unwrap())
        .build()
        .unwrap();
    let session = PetSession::new(config);
    let ra = session.estimate_population_rounds(&a, 256, &mut StdRng::seed_from_u64(9));
    let rb = session.estimate_population_rounds(&b, 256, &mut StdRng::seed_from_u64(9));
    assert!((ra.estimate - 2_000.0).abs() / 2_000.0 < 0.2);
    assert!((rb.estimate - 2_000.0).abs() / 2_000.0 < 0.2);
}

/// Scale smoke test: a million tags estimate within ±5% with the paper's
/// full round budget, in seconds of wall time thanks to the exact roster
/// fast path.
#[test]
fn million_tag_estimate() {
    let n = 1_000_000usize;
    let config = PetConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0x0E2E_0004);
    let report =
        PetSession::new(config).estimate_population(&TagPopulation::sequential(n), &mut rng);
    let rel = (report.estimate - n as f64).abs() / n as f64;
    assert!(
        rel < 0.05,
        "estimate {} ({rel:.4} rel err)",
        report.estimate
    );
    assert_eq!(report.metrics.slots, u64::from(config.rounds()) * 5);
}
