//! Differential equivalence of the SIMD lanes against the scalar
//! reference, plus a fixed-seed golden trace of the full estimator.
//!
//! The scalar lane is the specification; SSE2 and AVX2 are obligated to
//! reproduce it bit for bit on every input, not statistically. The fuzz
//! tests here drive each *supported* wide lane against scalar directly
//! (lane-explicit entry points, no environment juggling), while the golden
//! trace pins the estimator's output bits so that `scripts/ci.sh` — which
//! runs this suite twice, once under `PET_FORCE_LANE=scalar` and once with
//! runtime dispatch — proves the env-selected lane changes nothing either.

use pet_core::bits::BitString;
use pet_core::config::PetConfig;
use pet_core::front::Estimator;
use pet_core::kernel::locate_prefix_len_with;
use pet_core::oracle::CodeRoster;
use pet_hash::family::{AnyFamily, HashFamily, HashKind};
use pet_hash::simd::{self, Lane};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The wide lanes this host can actually execute (possibly none under an
/// emulator; every test degrades to a scalar self-check then).
fn wide_lanes() -> Vec<Lane> {
    [Lane::Sse2, Lane::Avx2]
        .into_iter()
        .filter(|l| l.is_supported())
        .collect()
}

proptest! {
    /// Multi-lane mixer hashing: same seed, keys, and truncation width
    /// must produce identical code arrays on every lane.
    #[test]
    fn mix2_bulk_lanes_match_scalar(
        seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 0..300),
        bits in 1u32..=64,
    ) {
        let mut want = vec![0u64; keys.len()];
        simd::mix2_bulk_into(Lane::Scalar, seed, &keys, bits, &mut want);
        for lane in wide_lanes() {
            let mut got = vec![0u64; keys.len()];
            simd::mix2_bulk_into(lane, seed, &keys, bits, &mut got);
            prop_assert_eq!(&got, &want, "mix2 diverged on {}", lane.as_str());
        }
    }

    /// Multi-message MD5: 4- and 8-wide single-block compressions must
    /// reproduce the scalar digest-derived codes exactly.
    #[test]
    fn md5_bulk_lanes_match_scalar(
        seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 0..150),
        bits in 1u32..=64,
    ) {
        let mut want = vec![0u64; keys.len()];
        simd::md5_bulk_into(Lane::Scalar, seed, &keys, bits, &mut want);
        for lane in wide_lanes() {
            let mut got = vec![0u64; keys.len()];
            simd::md5_bulk_into(lane, seed, &keys, bits, &mut got);
            prop_assert_eq!(&got, &want, "md5 diverged on {}", lane.as_str());
        }
    }

    /// Whole-array truncation (the §4.5 right-alignment) per lane.
    #[test]
    fn truncate_lanes_match_scalar(
        values in proptest::collection::vec(any::<u64>(), 0..300),
        bits in 1u32..=64,
    ) {
        let mut want = values.clone();
        simd::truncate_slice(Lane::Scalar, &mut want, bits);
        for lane in wide_lanes() {
            let mut got = values.clone();
            simd::truncate_slice(lane, &mut got, bits);
            prop_assert_eq!(&got, &want, "truncate diverged on {}", lane.as_str());
        }
    }

    /// Sorted responder counting: the hybrid binary-narrow + compare/count
    /// sweep must agree with `slice::partition_point` on every lane, for
    /// bounds inside, outside, and exactly on (possibly duplicated)
    /// elements.
    #[test]
    fn partition_point_lanes_match_std(
        raw_codes in proptest::collection::vec(any::<u64>(), 0..600),
        bound_index in any::<usize>(),
        raw_bound in any::<u64>(),
    ) {
        let mut codes = raw_codes;
        codes.sort_unstable();
        // Exercise the tie-heavy case: bounds drawn from the array itself.
        let bounds = if codes.is_empty() {
            vec![raw_bound, 0, u64::MAX]
        } else {
            vec![raw_bound, codes[bound_index % codes.len()], 0, u64::MAX]
        };
        for bound in bounds {
            let want = codes.partition_point(|&c| c < bound);
            for lane in [Lane::Scalar].into_iter().chain(wide_lanes()) {
                let got = simd::partition_point_less_with(lane, &codes, bound);
                prop_assert_eq!(
                    got, want,
                    "partition point diverged on {} (n = {}, bound = {})",
                    lane.as_str(), codes.len(), bound
                );
            }
        }
    }

    /// The trait-level bulk kernel every family exposes must match the
    /// definitional per-key scalar loop (this is the path `hash_codes_into`
    /// and `hash_codes_par` actually take).
    #[test]
    fn family_bulk_matches_per_key(
        seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        for kind in [HashKind::Mix, HashKind::Md5, HashKind::Sha1] {
            let family = AnyFamily::new(kind);
            let mut got = vec![0u64; keys.len()];
            family.hash_bits_bulk(seed, &keys, 32, &mut got);
            for (&k, &g) in keys.iter().zip(&got) {
                prop_assert_eq!(g, family.hash_bits(seed, k, 32), "{:?}", kind);
            }
        }
    }
}

/// The kernel's gray-node location over a real roster, per lane, against
/// the std binary search it replaced.
#[test]
fn locate_prefix_len_identical_across_lanes() {
    let config = PetConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0x10CA7E);
    for n in [0usize, 1, 2, 100, 4_096, 50_000] {
        let keys: Vec<u64> = (0..n as u64).collect();
        let roster = CodeRoster::new(&keys, &config, AnyFamily::default());
        let codes = roster.codes().to_vec();
        for _ in 0..256 {
            let path = BitString::random(config.height(), &mut rng);
            let want = locate_prefix_len_with(Lane::Scalar, &codes, &path);
            for lane in wide_lanes() {
                let got = locate_prefix_len_with(lane, &codes, &path);
                assert_eq!(got, want, "lane {} at n = {n}", lane.as_str());
            }
        }
    }
}

/// `PET_FORCE_LANE` contract: when set, the active lane *is* that lane;
/// when unset, the active lane is whatever the CPU supports. Either way
/// the active lane must be executable — the dispatcher never silently
/// degrades (unsupported forces panic instead, covered in pet-hash's unit
/// tests).
#[test]
fn active_lane_honors_environment() {
    let active = simd::active_lane();
    assert!(active.is_supported());
    match std::env::var("PET_FORCE_LANE") {
        Ok(forced) => assert_eq!(active.as_str(), forced, "forced lane must win"),
        Err(_) => assert_eq!(active, simd::detected_lane(), "auto = detected"),
    }
}

/// Fixed-seed golden estimate: the full front-door estimator (bulk hash →
/// radix sort → kernel search → aggregation) must produce these exact bits
/// regardless of which lane runs underneath. ci.sh runs this twice —
/// `PET_FORCE_LANE=scalar` and runtime dispatch — so a lane that drifts by
/// even one bit anywhere in the pipeline fails one of the two runs.
#[test]
fn golden_estimate_is_lane_invariant() {
    let config = PetConfig::paper_default();
    let keys: Vec<u64> = (0..1_500).collect();
    let mut rng = StdRng::seed_from_u64(0x51AD);
    let report = Estimator::with_family(config, AnyFamily::default())
        .try_estimate_keys_rounds(&keys, 48, &mut rng)
        .expect("estimation succeeds");
    // Golden values recorded under PET_FORCE_LANE=scalar at lane freeze.
    assert_eq!(
        report.estimate.to_bits(),
        0x409D_C877_2B72_5F32, // 1906.116376673756
        "estimate drifted: {} (0x{:016X})",
        report.estimate,
        report.estimate.to_bits()
    );
    assert_eq!(
        report.mean_prefix_len.to_bits(),
        0x4026_7555_5555_5555, // 11.229166666666666
        "mean prefix len drifted: {} (0x{:016X})",
        report.mean_prefix_len,
        report.mean_prefix_len.to_bits()
    );
}
