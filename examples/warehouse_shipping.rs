//! Cargo-shipping verification — the paper's §1 motivating workload.
//!
//! A freight forwarder ships containers declared to hold 120,000 tagged
//! items; the dock needs to verify the amount (not the identities) before
//! release. This example compares PET against the FNEB and LoF baselines at
//! the same (ε, δ) requirement and prints a Table 4-style summary, then
//! shows PET catching a short shipment.
//!
//! ```sh
//! cargo run --release --example warehouse_shipping
//! ```

use pet::baselines::{CardinalityEstimator, Fidelity, Fneb, Lof, PetAdapter};
use pet::prelude::*;

fn main() {
    let declared: usize = 120_000;
    let accuracy = Accuracy::new(0.05, 0.01).expect("valid accuracy");
    let mut rng = StdRng::seed_from_u64(0x000C_A460);

    println!("Inbound container: declared {declared} tagged items");
    println!(
        "Verification requirement: ±{:.0}% at {:.0}% confidence\n",
        accuracy.epsilon() * 100.0,
        (1.0 - accuracy.delta()) * 100.0
    );

    // --- Protocol comparison at equal accuracy --------------------------
    let protocols: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(PetAdapter::paper_default()),
        Box::new(Fneb::paper_default().with_fidelity(Fidelity::Sampled)),
        Box::new(Lof::paper_default().with_fidelity(Fidelity::Sampled)),
    ];
    let keys: Vec<u64> = (0..declared as u64).collect();
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>10}",
        "protocol", "rounds", "total slots", "estimate", "err %"
    );
    let mut pet_slots = 0u64;
    for p in &protocols {
        let mut air = Air::new(ChannelModel::Perfect);
        let est = p.estimate(&keys, &accuracy, &mut air, &mut rng);
        if p.name() == "PET" {
            pet_slots = est.metrics.slots;
        }
        println!(
            "{:<16} {:>8} {:>12} {:>12.0} {:>9.2}%",
            p.name(),
            est.rounds,
            est.metrics.slots,
            est.estimate,
            (est.estimate / declared as f64 - 1.0) * 100.0
        );
    }
    let fneb_slots = protocols[1].total_slots(&accuracy);
    let lof_slots = protocols[2].total_slots(&accuracy);
    println!(
        "\nPET uses {:.0}% of FNEB's time and {:.0}% of LoF's (paper: 35–43%).\n",
        pet_slots as f64 / fneb_slots as f64 * 100.0,
        pet_slots as f64 / lof_slots as f64 * 100.0
    );

    // --- Catching a short shipment --------------------------------------
    let actually_loaded = 110_000; // 8.3% short — outside the ±5% band
    let short = TagPopulation::sequential(actually_loaded);
    let estimator = Estimator::new(
        PetConfig::builder()
            .accuracy(accuracy)
            .build()
            .expect("valid config"),
    );
    let report = estimator.estimate_population(&short, &mut rng);
    let (lo, _hi) = accuracy.interval(declared as f64);
    println!("Spot check: container actually holds {actually_loaded} items");
    println!("  PET estimate: {:.0}", report.estimate);
    if report.estimate < lo {
        println!("  FLAG: estimate below the declared minimum {lo:.0} — hold for manual count");
    } else {
        println!("  estimate consistent with declaration");
    }
}
