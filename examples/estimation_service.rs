//! Estimation as a service: a warehouse back-end asking one PET server
//! for concurrent cardinality estimates.
//!
//! Three dock controllers each query the shared estimation service over
//! TCP — different population sizes, one over a lossy channel with
//! re-probe mitigation — while a fourth connection watches the RED
//! metrics. The server runs deterministically, so this example prints the
//! same estimates on every machine.
//!
//! Run with: `cargo run --example estimation_service`

use pet::server::json::Json;
use pet::server::{serve, Client, ServerConfig};
use std::time::Duration;

fn main() {
    let handle = serve(&ServerConfig {
        workers: 2,
        queue_capacity: 16,
        deterministic: true,
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = handle.addr();
    println!("estimation service on {addr}\n");

    // Three dock controllers, each on its own connection and thread.
    let docks = [
        (
            "dock-a",
            r#"{"id":"dock-a","verb":"estimate","tags":30000,"rounds":128}"#,
        ),
        (
            "dock-b",
            r#"{"id":"dock-b","verb":"estimate","tags":12000,"rounds":128,"backend":"oracle"}"#,
        ),
        (
            "dock-c",
            r#"{"id":"dock-c","verb":"estimate","tags":8000,"rounds":128,"miss":0.05,"probes":2}"#,
        ),
    ];
    let replies: Vec<(&str, String)> = std::thread::scope(|scope| {
        docks
            .map(|(name, line)| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .expect("timeout");
                    (name, client.roundtrip(line).expect("reply"))
                })
            })
            .map(|h| h.join().expect("dock thread"))
            .into_iter()
            .collect()
    });
    for (name, reply) in &replies {
        let v = Json::parse(reply).expect("reply is JSON");
        println!(
            "{name}: estimate {:>8.0} in {} slots",
            v.get("estimate").and_then(Json::as_f64).unwrap_or(f64::NAN),
            v.get("slots").and_then(Json::as_u64).unwrap_or(0),
        );
    }

    // The service self-reports its RED metrics over the same protocol.
    let mut admin = Client::connect(addr).expect("connect admin");
    admin
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let snapshot = admin
        .roundtrip(r#"{"id":"snap","verb":"telemetry-snapshot"}"#)
        .expect("snapshot");
    let v = Json::parse(&snapshot).expect("snapshot is JSON");
    let counters = v.get("snapshot").and_then(|s| s.get("counters"));
    println!(
        "\nserved {} estimates, {} errors",
        counters
            .and_then(|c| c.get("server.req.estimate"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
        counters
            .and_then(|c| c.get("server.overload"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
    );

    // Graceful shutdown: queued work drains before the socket closes.
    let ack = admin
        .roundtrip(r#"{"id":"bye","verb":"shutdown"}"#)
        .expect("shutdown ack");
    assert!(ack.contains("\"drained\":true"));
    handle.join();
    println!("service drained and stopped");
}
