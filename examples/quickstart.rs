//! Quickstart: estimate the size of a tag population with PET.
//!
//! ```sh
//! cargo run --release --example quickstart [tag-count] [epsilon] [delta]
//! ```
//!
//! Defaults reproduce the paper's running example: 50,000 tags, ±5% at 99%
//! confidence, answered in ~23k slots instead of the ~50k+ an identification
//! protocol would need just to *read* that many tags once.

use pet::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("tag-count must be an integer"))
        .unwrap_or(50_000);
    let epsilon: f64 = args
        .next()
        .map(|a| a.parse().expect("epsilon must be a float"))
        .unwrap_or(0.05);
    let delta: f64 = args
        .next()
        .map(|a| a.parse().expect("delta must be a float"))
        .unwrap_or(0.01);

    let accuracy = Accuracy::new(epsilon, delta).expect("epsilon/delta must lie in (0,1)");
    let config = PetConfig::builder()
        .accuracy(accuracy)
        .zero_probe(true)
        .build()
        .expect("valid configuration");

    println!("PET quickstart");
    println!("  population          : {n} tags (passive, preloaded 32-bit codes)");
    println!(
        "  accuracy target     : ±{:.0}% with {:.0}% confidence",
        epsilon * 100.0,
        (1.0 - delta) * 100.0
    );
    println!(
        "  scheduled rounds    : {} (Eq. 20), 5 slots each",
        config.rounds()
    );

    let mut rng = StdRng::seed_from_u64(0xD0C5);
    let population = TagPopulation::sequential(n);
    // The unified front door: runs on the configured backend (batched
    // kernel by default, bit-for-bit equal to the slot-by-slot oracle).
    let estimator = Estimator::new(config);
    let report = estimator.estimate_population(&population, &mut rng);

    let (lo, hi) = accuracy.interval(n as f64);
    let within = report.estimate >= lo && report.estimate <= hi;
    println!();
    println!("  estimate            : {:.0}", report.estimate);
    println!("  true count          : {n}");
    println!(
        "  relative error      : {:+.2}%",
        (report.estimate / n as f64 - 1.0) * 100.0
    );
    println!(
        "  inside [{lo:.0}, {hi:.0}]? {}",
        if within {
            "yes"
        } else {
            "no (expected for ≤δ of runs)"
        }
    );
    println!(
        "  air cost            : {} slots, {} command bits",
        report.metrics.slots, report.metrics.command_bits
    );
    println!(
        "  est. air time (Gen2): {:.2} s",
        TimeModel::gen2().elapsed(&report.metrics).as_secs_f64()
    );
}
