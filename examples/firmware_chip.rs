//! Bit-level demo: a reader estimating a field of *firmware* tag chips.
//!
//! Everything crosses the air as real frames — 4-bit opcode, payload,
//! CRC-5 — and the chips (`pet-firmware`, `no_std`, 47 bits of working
//! state) do nothing but XOR/shift comparisons, exactly the §4.5 passivity
//! claim. The estimate comes out the same as the simulator's.
//!
//! ```sh
//! cargo run --release --example firmware_chip
//! ```

use pet::firmware::{ChipAction, TagChip, HEIGHT};
use pet::phy::command::CommandFrame;
use pet::prelude::*;
use pet_hash::family::{AnyFamily, HashFamily};

fn main() {
    let n = 2_000usize;
    let rounds = 512u32;
    let mut rng = StdRng::seed_from_u64(0xF1F1);

    // Factory: burn a 32-bit PET code into each chip (hash of its EPC key).
    let family = AnyFamily::default();
    let mut chips: Vec<TagChip> = (0..n as u64)
        .map(|key| TagChip::new(family.hash_bits(0x9e37_79b9_7f4a_7c15, key, 32) as u32))
        .collect();

    println!("Field of {n} firmware chips (no_std, 47 bits of state each)");
    println!("Running {rounds} binary-search rounds with CRC-5-framed commands…\n");

    let mut sum_prefix = 0u64;
    let mut frame_bits = 0usize;
    let mut slots = 0u64;
    for _ in 0..rounds {
        let path: u32 = rand::Rng::random(&mut rng);
        let start = CommandFrame::round_start(u64::from(path), 32, None);
        frame_bits += start.len_bits();
        for chip in &mut chips {
            chip.on_frame(start.bits());
        }
        // Reader-side binary search with explicit 5-bit mid frames.
        let mut low = 1u8;
        let mut high = HEIGHT;
        let mut any_busy = false;
        let query = |chips: &mut [TagChip], mid: u8, bits: &mut usize| {
            let frame = CommandFrame::query_mid(u32::from(mid));
            *bits += frame.len_bits();
            chips
                .iter_mut()
                .map(|c| c.on_frame(frame.bits()))
                .filter(|a| *a == ChipAction::Respond)
                .count()
                > 0
        };
        while low < high {
            let mid = (low + high).div_ceil(2);
            slots += 1;
            if query(&mut chips, mid, &mut frame_bits) {
                low = mid;
                any_busy = true;
            } else {
                high = mid - 1;
            }
        }
        let l = if low == 1 && !any_busy {
            slots += 1;
            u8::from(query(&mut chips, 1, &mut frame_bits))
        } else {
            low
        };
        sum_prefix += u64::from(l);
    }

    let mean_prefix = sum_prefix as f64 / f64::from(rounds);
    let estimate = pet::stats::gray::estimate_from_mean_prefix(mean_prefix);
    println!(
        "slots used          : {slots} ({:.2} per round)",
        slots as f64 / f64::from(rounds)
    );
    println!("framed command bits : {frame_bits} (opcode + payload + CRC-5)");
    println!("mean prefix L̄       : {mean_prefix:.3}");
    println!("estimate            : {estimate:.0}   (true: {n})");
    println!(
        "relative error      : {:+.2}%",
        (estimate / n as f64 - 1.0) * 100.0
    );
    println!(
        "\nEvery chip decision was an XOR and a shift against a latched path —\n\
         no hashing, no arithmetic, no memory beyond 47 bits of state."
    );
}
