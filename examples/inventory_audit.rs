//! Continuous inventory auditing with the application layer: a warehouse
//! runs anonymous PET estimates every hour and feeds them into
//!
//! - a [`MissingTagMonitor`] (calibrated theft/loss alarm),
//! - a [`CapacityGuard`] (dock-occupancy limit), and
//! - a [`TrendTracker`] (is stock draining faster than shipments explain?).
//!
//! ```sh
//! cargo run --release --example inventory_audit
//! ```

use pet::apps::guard::{CapacityGuard, CapacityVerdict};
use pet::apps::monitor::MissingTagMonitor;
use pet::apps::trend::{TrendPoint, TrendTracker};
use pet::prelude::*;

fn main() {
    let book_inventory: u64 = 40_000;
    let dock_limit: u64 = 45_000;
    let accuracy = Accuracy::new(0.05, 0.05).expect("valid accuracy");
    let config = PetConfig::builder()
        .accuracy(accuracy)
        .build()
        .expect("valid config");
    let monitor =
        MissingTagMonitor::new(book_inventory, 0.01, config).expect("valid monitor parameters");
    let guard = CapacityGuard::new(dock_limit, 0.05, config);
    let mut trend = TrendTracker::new();
    let mut rng = StdRng::seed_from_u64(0xA0D1);

    println!("Warehouse audit — book inventory {book_inventory}, dock limit {dock_limit}");
    println!(
        "Monitor can detect a deficit of {:.1}% with 95% power per check.\n",
        monitor.detectable_fraction(0.95) * 100.0
    );
    println!(
        "{:<6} {:>10} {:>10} {:>16} {:>12} {:>12}",
        "hour", "true", "estimate", "missing check", "capacity", "95% CI"
    );

    // Overnight pilferage: 1.5% of stock walks away every hour after 02:00.
    let mut actual = book_inventory as usize;
    for hour in 0..8 {
        if hour >= 2 {
            actual = (actual as f64 * 0.985) as usize;
        }
        let stock = TagPopulation::sequential(actual);
        let verdict = monitor.check(&stock, &mut rng);
        let capacity = guard.check(&stock, &mut rng);
        trend.push(TrendPoint {
            time: f64::from(hour),
            estimate: verdict.estimate,
            rounds: config.rounds(),
        });
        let (lo, hi) = trend.points().last().unwrap().confidence_interval(0.05);
        println!(
            "{:<6} {:>10} {:>10.0} {:>16} {:>12} {:>6.0}–{:<6.0}",
            format!("{:02}:00", hour),
            actual,
            verdict.estimate,
            if verdict.alarm { "ALARM" } else { "ok" },
            match capacity {
                CapacityVerdict::Under => "under",
                CapacityVerdict::Over => "OVER",
                CapacityVerdict::Uncertain => "uncertain",
            },
            lo,
            hi
        );
    }

    println!(
        "\ntrend over the shift: {:?} (weighted log-slope {:+.4} bits/hour)",
        trend.drift(0.05),
        trend.log2_slope().map(|(s, _)| s).unwrap_or(0.0)
    );
    println!(
        "→ each check is anonymous ({} slots, no tag IDs on the air), yet the\n\
         shrinkage alarm and the declining trend are both statistically sound.",
        config.rounds() * 5
    );
}
