//! Counting conference attendees with RFID badges — the paper's §1 example
//! of a *dynamic* tag set (§4.6.3).
//!
//! Attendees stream in during the morning, some leave at lunch, more return
//! for the keynote. Because every PET estimate is an anonymous, stateless
//! snapshot (tags never transmit their IDs; the reader never enumerates
//! anyone), the organizer can re-estimate at will and privacy is preserved
//! by construction (§4.6.4).
//!
//! ```sh
//! cargo run --release --example conference_badges
//! ```

use pet::prelude::*;
use pet::tags::dynamics::{ChurnEvent, Timeline};

fn main() {
    // Loose accuracy is plenty for a headcount: ±10% at 95% confidence.
    let accuracy = Accuracy::new(0.10, 0.05).expect("valid accuracy");
    let config = PetConfig::builder()
        .accuracy(accuracy)
        .zero_probe(true)
        .build()
        .expect("valid config");
    let estimator = Estimator::new(config);
    let mut rng = StdRng::seed_from_u64(0x00BA_D6E5);

    println!(
        "Badge headcounts at ±{:.0}%/{:.0}% — {} rounds × 5 slots per estimate\n",
        accuracy.epsilon() * 100.0,
        (1.0 - accuracy.delta()) * 100.0,
        config.rounds()
    );
    println!(
        "{:<22} {:>10} {:>12} {:>10}",
        "time", "true count", "estimate", "err %"
    );

    let mut timeline = Timeline::new(TagPopulation::new());
    let schedule: &[(&str, ChurnEvent)] = &[
        ("08:00 doors open", ChurnEvent::Join(1_200)),
        ("09:00 early sessions", ChurnEvent::Join(2_800)),
        ("10:30 late arrivals", ChurnEvent::Join(1_500)),
        ("12:30 lunch exodus", ChurnEvent::Leave(2_000)),
        ("14:00 keynote pull", ChurnEvent::Join(1_700)),
        ("17:30 wind-down", ChurnEvent::Leave(3_800)),
    ];

    for (label, event) in schedule {
        let true_count = timeline.apply(*event);
        let report = estimator.estimate_population(timeline.population(), &mut rng);
        let err = if true_count == 0 {
            0.0
        } else {
            (report.estimate / true_count as f64 - 1.0) * 100.0
        };
        println!(
            "{:<22} {:>10} {:>12.0} {:>9.2}%",
            label, true_count, report.estimate, err
        );
    }

    // After hours: the zero probe reports an empty hall in a single slot.
    timeline.apply(ChurnEvent::Leave(10_000));
    let report = estimator.estimate_population(timeline.population(), &mut rng);
    println!(
        "{:<22} {:>10} {:>12.0}   (zero probe: {} slot)",
        "19:00 hall cleared", 0, report.estimate, report.metrics.slots
    );
}
