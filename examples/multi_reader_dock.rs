//! Multi-reader dock with overlapping coverage and mobile pallets (§4.6.3).
//!
//! Four readers cover a 6-zone receiving dock with deliberate overlaps; a
//! back-end controller coordinates the estimating path and aggregates
//! per-slot reports duplicate-insensitively — a pallet heard by three
//! readers counts exactly once. Pallets then shuffle between zones (fork-
//! lift traffic) and the controller re-estimates: mobility has no effect as
//! long as coverage stays complete, and partial coverage degrades to
//! "estimate what you can hear".
//!
//! ```sh
//! cargo run --release --example multi_reader_dock
//! ```

use pet::prelude::*;
use pet::sim::Deployment;
use pet::tags::mobility::ZoneField;

fn main() {
    let n = 20_000;
    let zones = 6;
    let accuracy = Accuracy::new(0.10, 0.05).expect("valid accuracy");
    let config = PetConfig::builder()
        .accuracy(accuracy)
        .build()
        .expect("valid config");
    let rounds = config.rounds();
    let mut rng = StdRng::seed_from_u64(0xD0CC);

    let population = TagPopulation::sequential(n);
    let mut field = ZoneField::uniform(n, zones, &mut rng);

    // Overlapping coverage: zones 2 and 3 are heard by two readers each.
    let coverages = vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![4, 5]];

    println!("Dock: {n} pallets over {zones} zones, 4 readers, overlapping coverage");
    println!("Controller runs {rounds} PET rounds (5 slots each)\n");

    for step in 0..3 {
        let deployment = Deployment::new(&population, field.clone(), coverages.clone());
        let report = deployment.estimate(&config, rounds, ChannelModel::Perfect, &mut rng);
        println!(
            "shuffle {step}: covered={} estimate={:.0} ({:+.2}% vs covered), \
             {} controller slots, {} reader-slot activations",
            report.covered_tags,
            report.estimate,
            (report.estimate / report.covered_tags as f64 - 1.0) * 100.0,
            report.controller_slots,
            report.reader_slot_total
        );
        // Forklifts move ~30% of pallets to other zones between estimates.
        field.step(0.3, &mut rng);
    }

    // Knock out the last reader: zone 5 goes dark; the controller now
    // estimates only the covered subpopulation.
    let partial = vec![vec![0, 1, 2], vec![2, 3], vec![3, 4]];
    let deployment = Deployment::new(&population, field.clone(), partial);
    let report = deployment.estimate(&config, rounds, ChannelModel::Perfect, &mut rng);
    println!(
        "\nreader 4 offline: covered={} (zone 5 dark), estimate={:.0} ({:+.2}% vs covered)",
        report.covered_tags,
        report.estimate,
        (report.estimate / report.covered_tags as f64 - 1.0) * 100.0
    );
    println!("→ the controller faithfully reports what its readers can hear.");
}
