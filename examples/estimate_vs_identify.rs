//! Why estimate at all? Identification vs estimation, measured — the
//! paper's §1 argument as a runnable demo.
//!
//! Inventorying every tag (slotted Aloha or tree walking) costs Θ(n) slots
//! and makes every tag transmit its ID; PET answers "how many?" in a budget
//! that does not depend on n at all, with almost no tag ever transmitting.
//!
//! ```sh
//! cargo run --release --example estimate_vs_identify
//! ```

use pet::baselines::{CardinalityEstimator, PetAdapter};
use pet::ident::{FramedAloha, IdentificationProtocol, TreeWalk};
use pet::phy::energy::EnergyModel;
use pet::prelude::*;

fn main() {
    let accuracy = Accuracy::new(0.05, 0.01).expect("valid accuracy");
    let pet = PetAdapter::paper_default();
    let aloha = FramedAloha::unbounded();
    let treewalk = TreeWalk::new();

    println!("Counting tags: identify everyone vs PET estimate (±5%, 99%)\n");
    println!(
        "{:>10} {:>13} {:>13} {:>10} {:>9} {:>14}",
        "tags", "Aloha-ID", "TreeWalk-ID", "PET", "speedup", "PET resp/tag"
    );

    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let keys: Vec<u64> = (0..n as u64).collect();
        let mut rng = StdRng::seed_from_u64(0x1D ^ n as u64);

        let mut air = Air::new(ChannelModel::Perfect);
        let a = aloha.identify(&keys, &mut air, &mut rng);

        let mut air = Air::new(ChannelModel::Perfect);
        let t = treewalk.identify(&keys, &mut air, &mut rng);

        let mut air = Air::new(ChannelModel::Perfect);
        let p = pet.estimate(&keys, &accuracy, &mut air, &mut rng);

        let best_ident = a.metrics.slots.min(t.metrics.slots);
        println!(
            "{:>10} {:>13} {:>13} {:>10} {:>8.0}× {:>14.3}",
            n,
            a.metrics.slots,
            t.metrics.slots,
            p.metrics.slots,
            best_ident as f64 / p.metrics.slots as f64,
            EnergyModel::responses_per_slot(&p.metrics) * p.metrics.slots as f64 / n as f64,
        );
    }

    println!(
        "\nIdentification is Θ(n); PET's budget is fixed by (ε, δ) alone — at a\n\
         million tags the estimate is ~120× faster than the best inventory,\n\
         and each tag transmitted less than twice in total (vs once per tag\n\
         per inventory, ID bits and all, for identification)."
    );
}
