//! Reader command overhead under the three §4.6.2 encodings, and what it
//! means in Gen2 air time.
//!
//! The slot count is identical in all three modes — only the bits the
//! reader broadcasts per query change: the full 32-bit mask, the 5-bit
//! prefix length, or a single feedback bit (tags mirror the binary-search
//! registers locally, costing them 2×5 bits of working memory).
//!
//! ```sh
//! cargo run --release --example command_overhead
//! ```

use pet::core::oracle::CodeRoster;
use pet::prelude::*;

fn main() {
    let n = 10_000;
    let accuracy = Accuracy::new(0.05, 0.01).expect("valid accuracy");
    let encodings = [
        ("32-bit mask", CommandEncoding::FullMask),
        ("5-bit mid", CommandEncoding::PrefixLength),
        ("1-bit feedback", CommandEncoding::FeedbackBit),
    ];

    println!("PET command overhead, {n} tags, ε=5% δ=1%\n");
    println!(
        "{:<16} {:>8} {:>10} {:>14} {:>12} {:>12}",
        "encoding", "rounds", "slots", "command bits", "bits/round", "air time"
    );

    for (label, encoding) in encodings {
        let config = PetConfig::builder()
            .accuracy(accuracy)
            .encoding(encoding)
            .build()
            .expect("valid config");
        let session = PetSession::new(config);
        let keys: Vec<u64> = (0..n as u64).collect();
        let mut oracle = CodeRoster::new(&keys, &config, session.family());
        let mut air = Air::new(ChannelModel::Perfect);
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let report = session.run(&mut oracle, &mut air, &mut rng);
        let time = TimeModel::gen2().elapsed(&report.metrics);
        println!(
            "{:<16} {:>8} {:>10} {:>14} {:>12.1} {:>10.2} s",
            label,
            report.rounds,
            report.metrics.slots,
            report.metrics.command_bits,
            report.metrics.command_bits as f64 / f64::from(report.rounds),
            time.as_secs_f64()
        );
    }

    println!(
        "\nEvery round also broadcasts the 32-bit estimating path once; \
         the feedback mode shrinks the per-query overhead 32× at the cost \
         of 10 bits of tag working state."
    );
}
