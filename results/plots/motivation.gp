set terminal pngcairo size 900,600 enhanced
set output 'motivation.png'
set datafile separator ','
set key top right
set grid
set title 'Identification vs estimation cost'
set xlabel 'Number of tags'
set ylabel 'Total time slots'
set logscale xy
plot 'results/motivation.csv' using 1:2 every ::1 with linespoints title 'Aloha-ID', \
  'results/motivation.csv' using 1:3 every ::1 with linespoints title 'TreeWalk-ID', \
  'results/motivation.csv' using 1:4 every ::1 with linespoints title 'PET (5%%, 1%%)'
