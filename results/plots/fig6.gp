set terminal pngcairo size 900,600 enhanced
set output 'fig6.png'
set datafile separator ','
set key top right
set grid
set title 'Estimate distributions at equal slot budget (Fig. 6)'
set xlabel 'Estimated number of tags'
set ylabel 'Fraction of runs'
plot for [s in "PET-theory PET 'Enhanced FNEB' LoF"] \
  'results/fig6.csv' using 2:(strcol(1) eq s ? $3 : 1/0) every ::1 \
  with linespoints title s
