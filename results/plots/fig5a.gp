set terminal pngcairo size 900,600 enhanced
set output 'fig5a.png'
set datafile separator ','
set key top right
set grid
set title 'Slots to meet the accuracy requirement (Fig. 5)'
set xlabel 'Confidence interval ε'
set ylabel 'Total time slots'
set logscale y
plot for [p in "PET FNEB LoF"] \
  'results/fig5a.csv' using 2:(strcol(1) eq p ? $5 : 1/0) every ::1 \
  with linespoints title p
