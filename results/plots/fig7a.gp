set terminal pngcairo size 900,600 enhanced
set output 'fig7a.png'
set datafile separator ','
set key top right
set grid
set title 'Per-tag memory for preloaded randomness (Fig. 7)'
set xlabel 'Confidence interval ε'
set ylabel 'Tag memory (bits)'
set logscale y
plot for [p in "PET FNEB LoF"] \
  'results/fig7a.csv' using 2:(strcol(1) eq p ? $4 : 1/0) every ::1 \
  with linespoints title p
