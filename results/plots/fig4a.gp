set terminal pngcairo size 900,600 enhanced
set output 'fig4a.png'
set datafile separator ','
set key top right
set grid
set title 'Estimation accuracy (n̂/n) vs estimating rounds (Fig. 4)'
set xlabel 'Estimating rounds m'
set ylabel 'Estimation accuracy (n̂/n)'
set logscale x 2
plot for [n in "5000 10000 50000 100000"] \
  'results/fig4.csv' using 2:(strcol(1) eq n ? $3 : 1/0) every ::1 \
  with linespoints title sprintf('n = %s', n)
