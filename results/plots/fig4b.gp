set terminal pngcairo size 900,600 enhanced
set output 'fig4b.png'
set datafile separator ','
set key top right
set grid
set title 'Standard deviation vs estimating rounds (Fig. 4)'
set xlabel 'Estimating rounds m'
set ylabel 'Standard deviation'
set logscale x 2
plot for [n in "5000 10000 50000 100000"] \
  'results/fig4.csv' using 2:(strcol(1) eq n ? $4 : 1/0) every ::1 \
  with linespoints title sprintf('n = %s', n)
