set terminal pngcairo size 900,600 enhanced
set output 'fig7b.png'
set datafile separator ','
set key top right
set grid
set title 'Per-tag memory for preloaded randomness (Fig. 7)'
set xlabel 'Error probability δ'
set ylabel 'Tag memory (bits)'
set logscale y
plot for [p in "PET FNEB LoF"] \
  'results/fig7b.csv' using 3:(strcol(1) eq p ? $4 : 1/0) every ::1 \
  with linespoints title p
