set terminal pngcairo size 900,600 enhanced
set output 'detection.png'
set datafile separator ','
set key top right
set grid
set title 'Missing-tag detection power'
set xlabel 'True missing fraction'
set ylabel 'Alarm probability'
set yrange [0:1.05]
plot 'results/detection.csv' using 1:2 every ::1 with linespoints title 'measured', \
  'results/detection.csv' using 1:3 every ::1 with lines title 'normal theory'
